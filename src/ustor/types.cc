#include "ustor/types.h"

#include "common/check.h"

namespace faust::ustor {

Bytes encode_value(const Value& v) {
  Bytes out;
  if (v.has_value()) {
    append_byte(out, 1);
    append(out, *v);
  } else {
    append_byte(out, 0);
  }
  return out;
}

crypto::Hash value_hash(const Value& v) { return crypto::Sha256::digest(encode_value(v)); }

Bytes encode_digest(const Digest& d) {
  Bytes out;
  if (d.present) {
    append_byte(out, 1);
    append(out, BytesView(d.hash.data(), d.hash.size()));
  } else {
    append_byte(out, 0);
  }
  return out;
}

Digest chain_step(const Digest& d, ClientId client) {
  Bytes material = encode_digest(d);
  append_u32(material, static_cast<std::uint32_t>(client));
  return Digest::of(crypto::Sha256::digest(material));
}

bool Version::is_zero() const {
  for (const Timestamp t : V) {
    if (t != 0) return false;
  }
  for (const Digest& d : M) {
    if (d.present) return false;
  }
  return true;
}

std::string Version::to_string() const {
  std::string out = "[";
  for (std::size_t k = 0; k < V.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(V[k]);
  }
  out += "]";
  return out;
}

Bytes encode_version(const Version& ver) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(ver.V.size()));
  for (const Timestamp t : ver.V) append_u64(out, t);
  for (const Digest& d : ver.M) append(out, encode_digest(d));
  return out;
}

bool version_leq(const Version& a, const Version& b) {
  FAUST_CHECK(a.n() == b.n());
  for (int k = 0; k < a.n(); ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (a.V[idx] > b.V[idx]) return false;
    if (a.V[idx] == b.V[idx] && !(a.M[idx] == b.M[idx])) return false;
  }
  return true;
}

VersionOrder version_compare(const Version& a, const Version& b) {
  const bool ab = version_leq(a, b);
  const bool ba = version_leq(b, a);
  if (ab && ba) return VersionOrder::kEqual;
  if (ab) return VersionOrder::kLess;
  if (ba) return VersionOrder::kGreater;
  return VersionOrder::kIncomparable;
}

bool versions_comparable(const Version& a, const Version& b) {
  return version_leq(a, b) || version_leq(b, a);
}

}  // namespace faust::ustor
