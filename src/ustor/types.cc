#include "ustor/types.h"

#include <utility>

#include "common/check.h"
#include "crypto/chunked_hasher.h"

namespace faust::ustor {

Value to_owned(const SharedValue& v) {
  if (!v.has_value()) return std::nullopt;
  return v->to_bytes();
}

SharedValue to_shared(Value v) {
  if (!v.has_value()) return std::nullopt;
  return SharedBytes::owned(std::move(*v));
}

crypto::Hash value_digest(DigestMode mode, const std::optional<BytesView>& v) {
  // ⊥ hashes identically in both modes (domain-separated from every
  // present-value digest: flat starts with presence byte 0, chunked roots
  // start with tag 0x02).
  if (mode == DigestMode::kFlat || !v.has_value()) return value_hash_view(v);
  return crypto::ChunkedHasher::digest(*v);
}

Bytes encode_value(const Value& v) {
  Bytes out;
  if (v.has_value()) {
    append_byte(out, 1);
    append(out, *v);
  } else {
    append_byte(out, 0);
  }
  return out;
}

crypto::Hash value_hash_view(const std::optional<BytesView>& v) {
  crypto::Sha256 h;
  const std::uint8_t presence = v.has_value() ? 1 : 0;
  h.update(BytesView(&presence, 1));
  if (v.has_value()) h.update(*v);
  return h.finish();
}

crypto::Hash value_hash(const Value& v) {
  if (!v.has_value()) return value_hash_view(std::nullopt);
  return value_hash_view(BytesView(*v));
}

void append_digest(Bytes& out, const Digest& d) {
  if (d.present) {
    append_byte(out, 1);
    append(out, BytesView(d.hash.data(), d.hash.size()));
  } else {
    append_byte(out, 0);
  }
}

Bytes encode_digest(const Digest& d) {
  Bytes out;
  append_digest(out, d);
  return out;
}

Digest chain_step(const Digest& d, ClientId client) {
  Bytes material = encode_digest(d);
  append_u32(material, static_cast<std::uint32_t>(client));
  return Digest::of(crypto::Sha256::digest(material));
}

bool Version::is_zero() const {
  for (const Timestamp t : V) {
    if (t != 0) return false;
  }
  for (const Digest& d : M) {
    if (d.present) return false;
  }
  return true;
}

std::string Version::to_string() const {
  std::string out = "[";
  for (std::size_t k = 0; k < V.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(V[k]);
  }
  out += "]";
  return out;
}

std::size_t encoded_version_size(const Version& ver) {
  std::size_t sz = 4 + ver.V.size() * 8;
  for (const Digest& d : ver.M) sz += d.present ? 33u : 1u;
  return sz;
}

void append_version(Bytes& out, const Version& ver) {
  append_u32(out, static_cast<std::uint32_t>(ver.V.size()));
  for (const Timestamp t : ver.V) append_u64(out, t);
  for (const Digest& d : ver.M) append_digest(out, d);
}

Bytes encode_version(const Version& ver) {
  Bytes out;
  out.reserve(encoded_version_size(ver));
  append_version(out, ver);
  return out;
}

bool version_leq(const Version& a, const Version& b) {
  FAUST_CHECK(a.n() == b.n());
  for (int k = 0; k < a.n(); ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (a.V[idx] > b.V[idx]) return false;
    if (a.V[idx] == b.V[idx] && !(a.M[idx] == b.M[idx])) return false;
  }
  return true;
}

// Single pass instead of two version_leq scans: tracks both directions at
// once and bails as soon as neither can hold.
VersionOrder version_compare(const Version& a, const Version& b) {
  FAUST_CHECK(a.n() == b.n());
  bool ab = true, ba = true;  // a ≼ b, b ≼ a still possible
  const std::size_t n = a.V.size();
  for (std::size_t k = 0; k < n && (ab || ba); ++k) {
    if (a.V[k] < b.V[k]) {
      ba = false;
    } else if (a.V[k] > b.V[k]) {
      ab = false;
    } else if (!(a.M[k] == b.M[k])) {
      return VersionOrder::kIncomparable;
    }
  }
  if (ab && ba) return VersionOrder::kEqual;
  if (ab) return VersionOrder::kLess;
  if (ba) return VersionOrder::kGreater;
  return VersionOrder::kIncomparable;
}

bool versions_comparable(const Version& a, const Version& b) {
  return version_compare(a, b) != VersionOrder::kIncomparable;
}

}  // namespace faust::ustor
