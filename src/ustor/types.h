// Core value types of the USTOR protocol (§5): register values, view-
// history digests, and versions (V, M) with the partial order of Def. 7.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/sha256.h"

namespace faust::ustor {

/// Operation code of an invocation (the `oc` of Algorithm 1).
enum class OpCode : std::uint8_t { kRead = 0, kWrite = 1 };

/// A register value. `std::nullopt` is the paper's ⊥ — the initial value
/// of every register, outside the value domain X.
using Value = std::optional<Bytes>;

/// A register value sharing its backing buffer (the zero-copy sibling of
/// Value: server MEM entries are slices of the retained SUBMIT message).
using SharedValue = std::optional<SharedBytes>;

/// Materializes an owned Value (copies the bytes).
Value to_owned(const SharedValue& v);

/// Wraps an owned Value into shared ownership (one move, no copy).
SharedValue to_shared(Value v);

/// How DATA-signature payload digests x̄ are computed. All clients of one
/// deployment must agree (the verifier recomputes the signer's digest):
/// FaustConfig::data_digest selects it deployment-wide.
enum class DigestMode : std::uint8_t {
  kFlat,     // x̄ = SHA-256 over the canonical value encoding (the paper's H)
  kChunked,  // x̄ = crypto::ChunkedHasher root: O(change) re-digests on edits
};

/// x̄ of `v` under `mode` (⊥ digests identically in both modes).
crypto::Hash value_digest(DigestMode mode, const std::optional<BytesView>& v);

/// Canonical encoding of a Value (presence byte + payload); the input to
/// value hashing and the wire format.
Bytes encode_value(const Value& v);

/// x̄ = H(encoding of v). The paper initializes x̄_i to ⊥ and glosses over
/// hashing ⊥; we uniformly hash the canonical encoding so that a reader's
/// recomputation (line 50 of Algorithm 1) matches the writer's DATA
/// signature even before the first write.
crypto::Hash value_hash(const Value& v);

/// Same hash over a borrowed value (the zero-copy decode path); hashes
/// incrementally instead of materializing the canonical encoding. Named
/// distinctly because Bytes converts to BytesView, which would make an
/// overload ambiguous.
crypto::Hash value_hash_view(const std::optional<BytesView>& v);

/// An entry of the digest vector M: either ⊥ or a SHA-256 digest of a view
/// history prefix (the D(ω1..ωm) of §5).
struct Digest {
  bool present = false;
  crypto::Hash hash{};

  bool operator==(const Digest&) const = default;

  static Digest bottom() { return {}; }
  static Digest of(const crypto::Hash& h) { return Digest{true, h}; }
};

/// Canonical encoding of a Digest (presence byte + hash bytes if present).
Bytes encode_digest(const Digest& d);

/// Appends the canonical Digest encoding in place (the single source of
/// truth shared by encode_digest and the signature payloads).
void append_digest(Bytes& out, const Digest& d);

/// One chain step of the digest recursion: D' = H(encode(D) || client).
/// D(ω1..ωm) = chain_step(D(ω1..ω_{m-1}), i_m), with D() = ⊥.
Digest chain_step(const Digest& d, ClientId client);

/// A version (V, M): V[k] counts the operations of client C_{k+1} in the
/// view history; M[k] is the digest of the view-history prefix ending at
/// C_{k+1}'s last operation. Vectors are indexed 0-based internally; the
/// paper's V_i[k] for client k is `V[k-1]` here. Accessors taking ClientId
/// hide the shift.
struct Version {
  std::vector<Timestamp> V;
  std::vector<Digest> M;

  Version() = default;
  explicit Version(int n) : V(static_cast<std::size_t>(n), 0), M(static_cast<std::size_t>(n)) {}

  int n() const { return static_cast<int>(V.size()); }

  Timestamp v(ClientId c) const { return V[static_cast<std::size_t>(c - 1)]; }
  Timestamp& v(ClientId c) { return V[static_cast<std::size_t>(c - 1)]; }
  const Digest& m(ClientId c) const { return M[static_cast<std::size_t>(c - 1)]; }
  Digest& m(ClientId c) { return M[static_cast<std::size_t>(c - 1)]; }

  /// True for the all-zero version (0^n, ⊥^n).
  bool is_zero() const;

  bool operator==(const Version&) const = default;

  /// Human-readable "[v1,v2,...]" (digests omitted), for logs and examples.
  std::string to_string() const;
};

/// Canonical encoding of a Version (the payload of COMMIT signatures).
Bytes encode_version(const Version& ver);

/// Appends the canonical Version encoding in place (the single source of
/// truth shared by encode_version and commit_payload).
void append_version(Bytes& out, const Version& ver);

/// Exact byte length of encode_version(ver), for buffer reservation.
std::size_t encoded_version_size(const Version& ver);

/// Decoded relationship between two versions under ≼ (Def. 7).
enum class VersionOrder { kEqual, kLess, kGreater, kIncomparable };

/// Definition 7: (Va,Ma) ≼ (Vb,Mb) iff Va <= Vb pointwise, and for every k
/// with Va[k] == Vb[k], Ma[k] == Mb[k]. Requires equal n.
bool version_leq(const Version& a, const Version& b);

/// Full comparison; kIncomparable is the forking-evidence case.
VersionOrder version_compare(const Version& a, const Version& b);

/// True iff a ≼ b or b ≼ a. FAUST's consistency check (§6).
bool versions_comparable(const Version& a, const Version& b);

}  // namespace faust::ustor
