// Wire messages of the USTOR protocol (Algorithms 1 and 2) and of the
// FAUST offline protocol (§6), plus the byte-string payloads that clients
// sign (SUBMIT / DATA / COMMIT / PROOF, domain-separated).
//
// Decoding is defensive: `decode_*` returns std::nullopt on any malformed
// input, and callers route that into the fail path — a Byzantine server
// must never be able to crash a client with garbage bytes.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "ustor/types.h"

namespace faust::ustor {

/// Message type tags (first byte of every message).
enum class MsgType : std::uint8_t {
  kSubmit = 1,
  kReply = 2,
  kCommit = 3,
  // FAUST offline (client-to-client) messages:
  kProbe = 10,
  kVersion = 11,
  kFailure = 12,
};

/// The invocation tuple (i, oc, j, σ) of §5: client i invokes `oc` on
/// register X_j; σ is i's SUBMIT-signature binding (oc, j, t).
struct InvocationTuple {
  ClientId client = 0;
  OpCode oc = OpCode::kRead;
  ClientId target = 0;
  Bytes submit_sig;

  bool operator==(const InvocationTuple&) const = default;
};

/// ⟨SUBMIT, t, (i,oc,j,σ), x, δ⟩ — client → server, one per operation.
struct SubmitMessage {
  Timestamp t = 0;
  InvocationTuple inv;
  Value value;    // ⊥ for reads
  Bytes data_sig; // δ: signature over (t, x̄_i)
};

/// A version together with the COMMIT-signature of the client that
/// committed it (SVER[k] on the server; VER_i[k] entries in FAUST).
struct SignedVersion {
  Version version;
  Bytes commit_sig;
};

/// The read-specific part of a REPLY: SVER[j] and MEM[j] of Algorithm 2.
struct ReadPayload {
  SignedVersion writer;  // (V^j, M^j, φ_j): largest version committed by C_j
  Timestamp tj = 0;      // MEM[j].timestamp
  Value value;           // MEM[j].value
  Bytes data_sig;        // MEM[j].δ
};

/// ⟨REPLY, c, SVER[c], [SVER[j], MEM[j],] L, P⟩ — server → client.
struct ReplyMessage {
  ClientId c = 0;                    // client whose op committed last in the schedule
  SignedVersion last;                // SVER[c]
  std::optional<ReadPayload> read;   // present iff replying to a read
  std::vector<InvocationTuple> L;    // concurrent (submitted, uncommitted) ops
  std::vector<Bytes> P;              // P[k]: PROOF-signature of client k+1 (n entries)
};

/// ⟨COMMIT, V, M, φ, ψ⟩ — client → server after each REPLY.
struct CommitMessage {
  Version version;
  Bytes commit_sig;  // φ: over the version
  Bytes proof_sig;   // ψ: over M[i]
};

/// FAUST §6: "which is the maximal version you know?" (offline channel).
struct ProbeMessage {};

/// FAUST §6 reply to a probe, also sent spontaneously: the maximal version
/// known to the sender, with the id of the client that committed it (the
/// signature verifies against that committer, which need not be the
/// sender).
struct VersionMessage {
  ClientId committer = 0;
  SignedVersion ver;
};

/// FAUST §6: server exposed as faulty. When the detection stems from two
/// incomparable committed versions, they are attached as transferable
/// evidence; receivers verify it before treating the sender's claim as
/// proof (defence against a compromised client spuriously killing the
/// service — an extension beyond the paper, see DESIGN.md).
struct FailureMessage {
  bool has_evidence = false;
  ClientId committer_a = 0;
  SignedVersion a;
  ClientId committer_b = 0;
  SignedVersion b;
};

// --- Encoding (type tag + payload) ---------------------------------------

Bytes encode(const SubmitMessage& m);
Bytes encode(const ReplyMessage& m);
Bytes encode(const CommitMessage& m);
Bytes encode(const ProbeMessage& m);
Bytes encode(const VersionMessage& m);
Bytes encode(const FailureMessage& m);

/// Peeks the type tag; nullopt on empty/unknown.
std::optional<MsgType> peek_type(BytesView data);

std::optional<SubmitMessage> decode_submit(BytesView data);
std::optional<ReplyMessage> decode_reply(BytesView data);
std::optional<CommitMessage> decode_commit(BytesView data);
std::optional<ProbeMessage> decode_probe(BytesView data);
std::optional<VersionMessage> decode_version(BytesView data);
std::optional<FailureMessage> decode_failure(BytesView data);

// --- Signature payloads (domain-separated canonical encodings) -----------

/// SUBMIT ‖ oc ‖ j ‖ t — binds an invocation to its schedule position.
Bytes submit_payload(OpCode oc, ClientId target, Timestamp t);

/// DATA ‖ t ‖ x̄ — binds the writer's register hash to its timestamp.
Bytes data_payload(Timestamp t, const crypto::Hash& xbar);

/// COMMIT ‖ V ‖ M — the version a client vouches for.
Bytes commit_payload(const Version& ver);

/// PROOF ‖ M[i] — the digest of the signer's own view-history prefix.
Bytes proof_payload(const Digest& mi);

}  // namespace faust::ustor
