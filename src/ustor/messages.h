// Wire messages of the USTOR protocol (Algorithms 1 and 2) and of the
// FAUST offline protocol (§6), plus the byte-string payloads that clients
// sign (SUBMIT / DATA / COMMIT / PROOF, domain-separated).
//
// Decoding is defensive: `decode_*` returns std::nullopt on any malformed
// input, and callers route that into the fail path — a Byzantine server
// must never be able to crash a client with garbage bytes.
//
// Two representations exist for the hot REPLY path (see PERF.md):
//  - Owned structs (`ReplyMessage` etc.) whose byte fields are `Bytes`.
//    Safe to keep anywhere; used by tests, adversaries and encoding.
//  - View structs (`ReplyMessageView` etc.) whose byte fields are
//    `BytesView` into the decoded buffer. Zero-copy: decoding allocates
//    only the version vectors. Valid ONLY while the source buffer is
//    alive and unmodified; the client processes a reply entirely within
//    the delivery callback, so it decodes views and copies just the few
//    fields it retains.
//
// `size_hint(m)` returns the exact encoded size of `m`; `encode` uses it
// to reserve so that encoding performs a single allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "ustor/types.h"

namespace faust::ustor {

/// Message type tags (first byte of every message).
enum class MsgType : std::uint8_t {
  kSubmit = 1,
  kReply = 2,
  kCommit = 3,
  kSubmitDelta = 4,  // SUBMIT shipping a splice delta / an advertised read base
  kReplyDelta = 5,   // read REPLY shipping a splice delta / "unchanged" token
  // FAUST offline (client-to-client) messages:
  kProbe = 10,
  kVersion = 11,
  kFailure = 12,
};

/// The invocation tuple (i, oc, j, σ) of §5: client i invokes `oc` on
/// register X_j; σ is i's SUBMIT-signature binding (oc, j, t).
struct InvocationTuple {
  ClientId client = 0;
  OpCode oc = OpCode::kRead;
  ClientId target = 0;
  Bytes submit_sig;

  bool operator==(const InvocationTuple&) const = default;
};

/// ⟨COMMIT, V, M, φ, ψ⟩ — client → server after each REPLY.
struct CommitMessage {
  Version version;
  Bytes commit_sig;  // φ: over the version
  Bytes proof_sig;   // ψ: over M[i]
};

/// ⟨SUBMIT, t, (i,oc,j,σ), x, δ [, COMMIT]⟩ — client → server, one per
/// operation.
///
/// `commit` is the D10 piggyback: the sender's latest COMMIT, carried as
/// an optional trailing section so its delivery is ATOMIC with the
/// submit. Algorithm 1 line 52 (V_j[j] ∈ {t_j, t_j−1}) is sound only
/// when the server's committed version for a writer never lags its
/// submit timestamp by more than one — true over reliable channels, but
/// two consecutively dropped COMMITs break it and turn pure message loss
/// into a false kBadWriterTimestamp at some reader. Embedding restores
/// the invariant with probability 1: any SUBMIT the server accepts first
/// lands the commit of the op before it. Absent (the reliable-fabric
/// default), the encoding is byte-identical to the pre-D10 wire format.
struct SubmitMessage {
  Timestamp t = 0;
  InvocationTuple inv;
  Value value;    // ⊥ for reads
  Bytes data_sig; // δ: signature over (t, x̄_i)
  std::optional<CommitMessage> commit;  // D10: sender's latest COMMIT
};

/// A version together with the COMMIT-signature of the client that
/// committed it (SVER[k] on the server; VER_i[k] entries in FAUST).
struct SignedVersion {
  Version version;
  Bytes commit_sig;
};

/// The read-specific part of a REPLY: SVER[j] and MEM[j] of Algorithm 2.
struct ReadPayload {
  SignedVersion writer;  // (V^j, M^j, φ_j): largest version committed by C_j
  Timestamp tj = 0;      // MEM[j].timestamp
  Value value;           // MEM[j].value
  Bytes data_sig;        // MEM[j].δ
};

/// ⟨REPLY, c, SVER[c], [SVER[j], MEM[j],] L, P⟩ — server → client.
struct ReplyMessage {
  ClientId c = 0;                    // client whose op committed last in the schedule
  SignedVersion last;                // SVER[c]
  std::optional<ReadPayload> read;   // present iff replying to a read
  std::vector<InvocationTuple> L;    // concurrent (submitted, uncommitted) ops
  std::vector<Bytes> P;              // P[k]: PROOF-signature of client k+1 (n entries)
};

/// FAUST §6: "which is the maximal version you know?" (offline channel).
struct ProbeMessage {};

/// FAUST §6 reply to a probe, also sent spontaneously: the maximal version
/// known to the sender, with the id of the client that committed it (the
/// signature verifies against that committer, which need not be the
/// sender).
struct VersionMessage {
  ClientId committer = 0;
  SignedVersion ver;
};

/// FAUST §6: server exposed as faulty. When the detection stems from two
/// incomparable committed versions, they are attached as transferable
/// evidence; receivers verify it before treating the sender's claim as
/// proof (defence against a compromised client spuriously killing the
/// service — an extension beyond the paper, see DESIGN.md).
struct FailureMessage {
  bool has_evidence = false;
  ClientId committer_a = 0;
  SignedVersion a;
  ClientId committer_b = 0;
  SignedVersion b;
};

// --- Delta messages (O(change) on the wire, DESIGN.md D6) -----------------

/// One edit step of a value delta: erase `erase_len` bytes at `offset`,
/// then insert `insert` there. Splices apply SEQUENTIALLY — each offset
/// addresses the intermediate buffer after all previous splices — so a
/// list of splices composes edits the way they were made, and chained
/// deltas concatenate into one list.
struct Splice {
  std::uint64_t offset = 0;
  std::uint64_t erase_len = 0;
  Bytes insert;

  bool operator==(const Splice&) const = default;
};

/// Splice whose insert bytes view into the decode buffer.
struct SpliceView {
  std::uint64_t offset = 0;
  std::uint64_t erase_len = 0;
  BytesView insert;
};

/// Applies `splices` sequentially to `base`. Returns nullopt if any
/// splice reaches past the end of the evolving buffer or the final size
/// differs from `expected_size` — a malformed delta is rejected as a
/// whole, never partially applied. The result can only grow by the total
/// insert bytes (themselves bounded by the carrying message), so a
/// Byzantine sender cannot force an oversized allocation.
std::optional<Bytes> apply_delta(BytesView base, std::span<const Splice> splices,
                                 std::uint64_t expected_size);
std::optional<Bytes> apply_delta(BytesView base, std::span<const SpliceView> splices,
                                 std::uint64_t expected_size);

/// ⟨SUBMIT_DELTA, t, (i,oc,j,σ), …, δ⟩ — client → server. Two forms,
/// selected by the opcode (any mismatch between opcode and fields is
/// non-canonical and rejected at decode):
///   * kWrite: ships `splices` against the client's previously submitted
///     value (whose chunk-tree root is `base_digest`) instead of the full
///     bytes; `new_root`/`new_size` describe the spliced result and δ is
///     the fresh DATA signature over (t, new_root). Verifiers rehash only
///     the dirty chunks against the base tree they hold — a server cannot
///     forge a delta that roots correctly.
///   * kRead: a plain read that ADVERTISES the reader's last verified
///     (base_ts, base_digest) for register X_j, inviting a REPLY_DELTA
///     (or "unchanged" token) against that base.
struct SubmitDeltaMessage {
  Timestamp t = 0;
  InvocationTuple inv;
  // kWrite form:
  crypto::Hash base_digest{};
  crypto::Hash new_root{};
  std::uint64_t new_size = 0;
  std::vector<Splice> splices;
  // kRead form (base_digest doubles as the advertised digest):
  Timestamp base_ts = 0;
  Bytes data_sig;
  /// D10 piggybacked COMMIT (see SubmitMessage::commit); absent keeps the
  /// encoding byte-identical to the pre-D10 format.
  std::optional<CommitMessage> commit;
};

/// The read payload of a REPLY_DELTA: MEM[j] expressed against the
/// reader's advertised base. `unchanged` is the O(1) token (the value
/// still digests to `base_digest`); otherwise `splices` rebuild the
/// current value from the base. The DATA signature always covers the
/// CURRENT (tj, root) — a server lying "unchanged" about a changed value
/// ships a signature over a root the base digest cannot reproduce, which
/// the verifier rejects.
struct ReadPayloadDelta {
  SignedVersion writer;
  Timestamp tj = 0;
  bool unchanged = false;
  crypto::Hash base_digest{};
  std::uint64_t new_size = 0;
  std::vector<Splice> splices;
  Bytes data_sig;
};

/// ⟨REPLY_DELTA, c, SVER[c], read-delta, L, P⟩ — server → client, only
/// ever answering an advertising read. Version/L/P parts are verbatim
/// ReplyMessage fields; only the value travels as a delta.
struct ReplyDeltaMessage {
  ClientId c = 0;
  SignedVersion last;
  ReadPayloadDelta read;
  std::vector<InvocationTuple> L;
  std::vector<Bytes> P;
};

// --- Zero-copy view variants (hot client decode path) ---------------------

/// Register value as a view: nullopt is ⊥, otherwise a view of the bytes.
using ValueView = std::optional<BytesView>;

/// InvocationTuple whose signature is a view into the decode buffer.
struct InvocationTupleView {
  ClientId client = 0;
  OpCode oc = OpCode::kRead;
  ClientId target = 0;
  BytesView submit_sig;
};

/// SignedVersion whose signature is a view into the decode buffer.
struct SignedVersionView {
  Version version;
  BytesView commit_sig;

  /// Deep copy, for the few fields a client retains past the buffer.
  SignedVersion to_owned() const {
    return SignedVersion{version, Bytes(commit_sig.begin(), commit_sig.end())};
  }
};

/// ReadPayload over views.
struct ReadPayloadView {
  SignedVersionView writer;
  Timestamp tj = 0;
  ValueView value;
  BytesView data_sig;
};

/// ReplyMessage over views: decoding allocates only the version vectors
/// and the L/P vectors of views, never the signature/value bytes.
struct ReplyMessageView {
  ClientId c = 0;
  SignedVersionView last;
  std::optional<ReadPayloadView> read;
  std::vector<InvocationTupleView> L;
  std::vector<BytesView> P;

  /// Deep copy into the owned representation.
  ReplyMessage materialize() const;
};

/// SubmitMessage over views (the server's zero-copy decode path): the
/// value and signatures alias the delivered message buffer, which the
/// server retains via shared ownership instead of copying the value out.
struct SubmitMessageView {
  Timestamp t = 0;
  InvocationTupleView inv;
  ValueView value;
  BytesView data_sig;
  // D10 piggybacked COMMIT (SubmitMessage::commit). The version is owned
  // (decoding it allocates its vectors anyway); the signatures view into
  // the buffer like every other byte field.
  bool has_commit = false;
  Version commit_version;
  BytesView commit_sig;
  BytesView proof_sig;
};

/// SubmitDeltaMessage over views (the server's zero-copy decode path).
struct SubmitDeltaMessageView {
  Timestamp t = 0;
  InvocationTupleView inv;
  crypto::Hash base_digest{};
  crypto::Hash new_root{};
  std::uint64_t new_size = 0;
  std::vector<SpliceView> splices;
  Timestamp base_ts = 0;
  BytesView data_sig;
  // D10 piggybacked COMMIT (see SubmitMessageView).
  bool has_commit = false;
  Version commit_version;
  BytesView commit_sig;
  BytesView proof_sig;
};

/// ReadPayloadDelta over views.
struct ReadPayloadDeltaView {
  SignedVersionView writer;
  Timestamp tj = 0;
  bool unchanged = false;
  crypto::Hash base_digest{};
  std::uint64_t new_size = 0;
  std::vector<SpliceView> splices;
  BytesView data_sig;
};

/// ReplyDeltaMessage over views (the client's hot decode path).
struct ReplyDeltaMessageView {
  ClientId c = 0;
  SignedVersionView last;
  ReadPayloadDeltaView read;
  std::vector<InvocationTupleView> L;
  std::vector<BytesView> P;
};

/// Converts a ValueView back to an owned Value.
Value to_owned(const ValueView& v);

// --- Server-side reply snapshot (copy-on-write, see PERF.md) --------------

/// ReadPayload whose value/DATA-signature share the writer's retained
/// SUBMIT buffer (zero-copy server storage): the read part of a
/// ReplySnapshot. Encoded in place; materialize() for a mutable copy.
struct ReadPayloadShared {
  SignedVersion writer;
  Timestamp tj = 0;
  SharedValue value;
  SharedBytes data_sig;

  ReadPayload materialize() const {
    return ReadPayload{writer, tj, to_owned(value), data_sig.to_bytes()};
  }
};

/// Wraps an owned ReadPayload into the shared representation (moves the
/// bytes into fresh shared buffers); hand-built snapshot convenience.
ReadPayloadShared to_shared(ReadPayload rp);

/// What ServerCore::process_submit returns: the REPLY content with L and P
/// SHARED with the server state instead of deep-copied. The snapshot's
/// logical L is the first `l_count` entries of `*L`: the server may append
/// to the shared vector after the snapshot is taken (the submitting op
/// itself, line 116), which leaves the prefix untouched — so consumers
/// must read at most `l_count` entries and must not hold iterators into
/// `*L` across server calls. Any mutation that would disturb the prefix
/// (the COMMIT-time prune) clones first if a snapshot is still alive, so
/// a held snapshot always observes the state it was taken from. Encode it
/// directly, or `materialize()` a mutable deep copy (adversaries do, to
/// distort it).
struct ReplySnapshot {
  ClientId c = 0;
  SignedVersion last;
  std::optional<ReadPayloadShared> read;
  std::shared_ptr<const std::vector<InvocationTuple>> L;
  std::size_t l_count = 0;  // logical |L|: entries of *L this reply covers
  std::shared_ptr<const std::vector<Bytes>> P;
  std::uint64_t generation = 0;  // server state generation when taken

  /// Deep copy into a free-standing, mutable ReplyMessage.
  ReplyMessage materialize() const;
};

// --- Encoding (type tag + payload) ---------------------------------------

Bytes encode(const SubmitMessage& m);
Bytes encode(const ReplyMessage& m);
Bytes encode(const ReplySnapshot& m);
Bytes encode(const SubmitDeltaMessage& m);
Bytes encode(const ReplyDeltaMessage& m);
Bytes encode(const CommitMessage& m);
Bytes encode(const ProbeMessage& m);
Bytes encode(const VersionMessage& m);
Bytes encode(const FailureMessage& m);

/// Exact encoded size of each message (what encode() will produce); used
/// to reserve the Writer buffer so encoding allocates exactly once.
std::size_t size_hint(const SubmitMessage& m);
std::size_t size_hint(const ReplyMessage& m);
std::size_t size_hint(const ReplySnapshot& m);
std::size_t size_hint(const SubmitDeltaMessage& m);
std::size_t size_hint(const ReplyDeltaMessage& m);
std::size_t size_hint(const CommitMessage& m);
std::size_t size_hint(const ProbeMessage& m);
std::size_t size_hint(const VersionMessage& m);
std::size_t size_hint(const FailureMessage& m);

/// Peeks the type tag; nullopt on empty/unknown.
std::optional<MsgType> peek_type(BytesView data);

std::optional<SubmitMessage> decode_submit(BytesView data);
std::optional<ReplyMessage> decode_reply(BytesView data);

/// Zero-copy SUBMIT decode (the server's hot path): all byte fields view
/// into `data`, which must outlive the returned message. Same validation
/// as decode_submit.
std::optional<SubmitMessageView> decode_submit_view(BytesView data);

/// Encodes a SUBMIT directly from borrowed parts (the zero-copy write
/// path: the value bytes are copied exactly once, into the wire buffer).
/// Byte-identical to encode(SubmitMessage) over the same content.
/// `commit` (may be null) appends the D10 piggybacked COMMIT section.
Bytes encode_submit(Timestamp t, const InvocationTuple& inv, const ValueView& value,
                    BytesView data_sig, const CommitMessage* commit = nullptr);
std::optional<CommitMessage> decode_commit(BytesView data);
std::optional<ProbeMessage> decode_probe(BytesView data);
std::optional<VersionMessage> decode_version(BytesView data);
std::optional<FailureMessage> decode_failure(BytesView data);

/// Zero-copy REPLY decode: all byte fields view into `data`, which must
/// outlive the returned message. Same validation and nullopt-on-garbage
/// behavior as decode_reply.
std::optional<ReplyMessageView> decode_reply_view(BytesView data);

// --- Delta codecs ---------------------------------------------------------

std::optional<SubmitDeltaMessage> decode_submit_delta(BytesView data);
std::optional<ReplyDeltaMessage> decode_reply_delta(BytesView data);

/// Zero-copy decodes: byte fields (splice inserts, signatures) view into
/// `data`, which must outlive the returned message.
std::optional<SubmitDeltaMessageView> decode_submit_delta_view(BytesView data);
std::optional<ReplyDeltaMessageView> decode_reply_delta_view(BytesView data);

/// Encodes the write form of SUBMIT_DELTA directly from borrowed parts.
/// Byte-identical to encode(SubmitDeltaMessage) over the same content
/// (inv.oc must be kWrite).
Bytes encode_submit_delta(Timestamp t, const InvocationTuple& inv,
                          const crypto::Hash& base_digest, const crypto::Hash& new_root,
                          std::uint64_t new_size, std::span<const Splice> splices,
                          BytesView data_sig, const CommitMessage* commit = nullptr);

/// Encodes the read form of SUBMIT_DELTA (an advertised-base read).
/// Byte-identical to encode(SubmitDeltaMessage) over the same content
/// (inv.oc must be kRead).
Bytes encode_submit_read_base(Timestamp t, const InvocationTuple& inv, Timestamp base_ts,
                              const crypto::Hash& base_digest, BytesView data_sig,
                              const CommitMessage* commit = nullptr);

/// The server's plan for answering an advertised-base read without
/// materializing a ReplyDeltaMessage: either "unchanged" or the ordered
/// runs of splice records that carry the base forward to the current
/// value. The spans borrow the server's delta history and must stay
/// alive until encode_reply_delta returns.
struct ReadDeltaPlan {
  bool unchanged = false;
  crypto::Hash base_digest{};  // the client's advertised base (echoed)
  std::uint64_t new_size = 0;  // current value size (spliced form only)
  std::vector<std::span<const Splice>> runs;
};

/// Encodes a REPLY_DELTA from a reply snapshot plus a delta plan, without
/// copying the splice history. Byte-identical to encode(ReplyDeltaMessage)
/// over the same content. The snapshot's read payload must be present.
Bytes encode_reply_delta(const ReplySnapshot& snap, const ReadDeltaPlan& plan);

// --- Signature payloads (domain-separated canonical encodings) -----------

/// SUBMIT ‖ oc ‖ j ‖ t — binds an invocation to its schedule position.
Bytes submit_payload(OpCode oc, ClientId target, Timestamp t);

/// DATA ‖ t ‖ x̄ — binds the writer's register hash to its timestamp.
Bytes data_payload(Timestamp t, const crypto::Hash& xbar);

/// COMMIT ‖ V ‖ M — the version a client vouches for.
Bytes commit_payload(const Version& ver);

/// PROOF ‖ M[i] — the digest of the signer's own view-history prefix.
Bytes proof_payload(const Digest& mi);

}  // namespace faust::ustor
