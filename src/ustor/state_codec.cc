#include "ustor/state_codec.h"

#include <utility>
#include <vector>

#include "wire/encoder.h"

namespace faust::ustor {
namespace {

void put_version(wire::Writer& w, const Version& v) {
  w.put_u32(static_cast<std::uint32_t>(v.V.size()));
  for (const Timestamp t : v.V) w.put_u64(t);
  for (const Digest& d : v.M) {
    w.put_u8(d.present ? 1 : 0);
    if (d.present) w.put_raw(BytesView(d.hash.data(), d.hash.size()));
  }
}

bool get_version(wire::Reader& r, int n, Version* out) {
  const std::uint32_t got = r.get_u32();
  if (!r.ok() || got != static_cast<std::uint32_t>(n)) return false;
  Version v(n);
  for (auto& t : v.V) t = r.get_u64();
  for (auto& d : v.M) {
    const std::uint8_t present = r.get_u8();
    if (present > 1) return false;
    if (present == 1) {
      const BytesView raw = r.get_view(32);
      if (wire::Reader::is_error(raw)) return false;
      d.present = true;
      std::copy(raw.begin(), raw.end(), d.hash.begin());
    }
  }
  if (!r.ok()) return false;
  *out = std::move(v);
  return true;
}

constexpr std::uint32_t kMagic = 0x46535431;  // "FST1": format version 1
// Caps against a corrupted length field forcing a huge allocation; far
// above anything a real deployment produces (L and the schedule are
// pruned/bounded by the protocol's own dynamics, n by kMaxN upstream).
constexpr std::uint32_t kMaxList = 1u << 24;

}  // namespace

Bytes encode_server_state(const ServerCore& core) {
  const int n = core.n();
  wire::Writer w;
  w.put_u32(kMagic);
  w.put_u32(static_cast<std::uint32_t>(n));
  for (ClientId i = 1; i <= n; ++i) {
    const ServerCore::MemEntry& me = core.mem(i);
    w.put_u64(me.t);
    w.put_u8(me.value.has_value() ? 1 : 0);
    if (me.value.has_value()) w.put_bytes(me.value->view());
    w.put_bytes(me.data_sig.view());
  }
  w.put_u32(static_cast<std::uint32_t>(core.last_committer()));
  for (ClientId i = 1; i <= n; ++i) {
    const SignedVersion& sv = core.sver(i);
    put_version(w, sv.version);
    w.put_bytes(sv.commit_sig);
  }
  const std::vector<InvocationTuple>& L = core.L();
  w.put_u32(static_cast<std::uint32_t>(L.size()));
  for (const InvocationTuple& inv : L) {
    w.put_u32(static_cast<std::uint32_t>(inv.client));
    w.put_u8(static_cast<std::uint8_t>(inv.oc));
    w.put_u32(static_cast<std::uint32_t>(inv.target));
    w.put_bytes(inv.submit_sig);
  }
  for (const Bytes& p : core.P()) w.put_bytes(p);
  const std::vector<ScheduledOp>& sched = core.schedule();
  w.put_u32(static_cast<std::uint32_t>(sched.size()));
  for (const ScheduledOp& op : sched) {
    w.put_u32(static_cast<std::uint32_t>(op.client));
    w.put_u8(static_cast<std::uint8_t>(op.oc));
    w.put_u32(static_cast<std::uint32_t>(op.target));
    w.put_u64(op.t);
  }
  return w.take();
}

bool restore_server_state(ServerCore& core, BytesView image) {
  wire::Reader r(image);
  if (r.get_u32() != kMagic) return false;
  const std::uint32_t n = r.get_u32();
  if (!r.ok() || n != static_cast<std::uint32_t>(core.n())) return false;

  std::vector<ServerCore::MemEntry> mem(n);
  for (auto& me : mem) {
    me.t = r.get_u64();
    const std::uint8_t present = r.get_u8();
    if (present > 1) return false;
    if (present == 1) {
      const BytesView v = r.get_bytes_view();
      if (wire::Reader::is_error(v)) return false;
      me.value = SharedBytes::copy_of(v);
    }
    const BytesView sig = r.get_bytes_view();
    if (wire::Reader::is_error(sig)) return false;
    me.data_sig = SharedBytes::copy_of(sig);
  }

  const std::uint32_t c = r.get_u32();
  if (!r.ok() || c < 1 || c > n) return false;

  std::vector<SignedVersion> sver(n);
  for (auto& sv : sver) {
    if (!get_version(r, static_cast<int>(n), &sv.version)) return false;
    sv.commit_sig = r.get_bytes();
    if (!r.ok()) return false;
  }

  const std::uint32_t l_count = r.get_u32();
  if (!r.ok() || l_count > kMaxList) return false;
  std::vector<InvocationTuple> concurrent(l_count);
  for (auto& inv : concurrent) {
    inv.client = static_cast<ClientId>(r.get_u32());
    const std::uint8_t oc = r.get_u8();
    if (oc > 1) return false;
    inv.oc = static_cast<OpCode>(oc);
    inv.target = static_cast<ClientId>(r.get_u32());
    inv.submit_sig = r.get_bytes();
    if (!r.ok() || inv.client < 1 || inv.client > n) return false;
  }

  std::vector<Bytes> proofs(n);
  for (auto& p : proofs) {
    p = r.get_bytes();
    if (!r.ok()) return false;
  }

  const std::uint32_t s_count = r.get_u32();
  if (!r.ok() || s_count > kMaxList) return false;
  std::vector<ScheduledOp> schedule(s_count);
  for (auto& op : schedule) {
    op.client = static_cast<ClientId>(r.get_u32());
    const std::uint8_t oc = r.get_u8();
    if (oc > 1) return false;
    op.oc = static_cast<OpCode>(oc);
    op.target = static_cast<ClientId>(r.get_u32());
    op.t = r.get_u64();
    if (!r.ok() || op.client < 1 || op.client > n) return false;
  }

  if (!r.ok() || !r.exhausted()) return false;
  core.restore(std::move(mem), static_cast<ClientId>(c), std::move(sver),
               std::move(concurrent), std::move(proofs), std::move(schedule));
  return true;
}

}  // namespace faust::ustor
