// The `faust_sockd serve` entry point: one shard's server-side FAUST
// deployment as a standalone process (DESIGN.md D9; see process_cluster.h
// for the stdout READY/STATS protocol this implements).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "cache/cache_node.h"
#include "sock/endpoint.h"

namespace faust::sock {

/// Flags of the serve subcommand (parsed in tools/faust_sockd.cpp).
struct ServeOptions {
  int n = 3;                      // clients of this shard's deployment
  Endpoint listen;                // where to accept (tcp port 0 = ephemeral)
  std::string dir;                // durability directory (WAL + snapshot)
  std::size_t snapshot_every = 64;
  std::chrono::nanoseconds tick{1'000};  // executor tick pacing
  std::uint64_t incarnation = 1;  // bumped by ProcessCluster per restart
  bool cache = false;             // own a cache::CacheNode
  cache::CacheOptions cache_opts; // arena/ttl when cache is on
  std::size_t max_frame_bytes = 64u << 20;
};

/// Runs the server process: binds, recovers the durable server from
/// `dir`, prints READY, serves until SIGTERM, prints STATS, exits 0.
/// SIGKILL (the crash injection) skips all of the teardown — that is the
/// point.
int run_server_process(const ServeOptions& options);

}  // namespace faust::sock
