#include "sock/serve.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include "cache/cache_wire.h"
#include "rt/threaded_runtime.h"
#include "sock/socket_transport.h"
#include "storage/persistent_server.h"

namespace faust::sock {
namespace {

volatile sig_atomic_t g_terminate = 0;

void on_sigterm(int) { g_terminate = 1; }

}  // namespace

int run_server_process(const ServeOptions& options) {
  struct sigaction sa = {};
  sa.sa_handler = on_sigterm;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::filesystem::create_directories(options.dir);

  rt::ThreadedRuntimeConfig rc;
  rc.tick = options.tick;
  rt::ThreadedRuntime runtime(rc);

  SocketTransportConfig tc;
  tc.listen = options.listen;
  tc.incarnation = options.incarnation;
  tc.max_frame_bytes = options.max_frame_bytes;
  SocketTransport transport(runtime, tc);

  // Recovery happens in this constructor (WAL replay / snapshot load);
  // the attach at its end opens the shop — clients may already be
  // dialling, and their frames will post onto the runtime from here on.
  storage::PersistentServer server(options.n, transport, options.dir,
                                   storage::DurabilityOptions{options.snapshot_every});

  std::unique_ptr<cache::CacheNode> cache_node;
  if (options.cache) {
    cache_node = std::make_unique<cache::CacheNode>(cache::kCacheNodeId, transport,
                                                    runtime, options.n, options.cache_opts);
  }

  const char* recovered = server.recovered_records() == 0 ? "none"
                          : server.recovered_from_snapshot() ? "snapshot"
                                                             : "replay";
  std::printf("READY addr=%s recovered=%s records=%zu incarnation=%llu\n",
              transport.bound_endpoint().uri().c_str(), recovered,
              server.recovered_records(),
              static_cast<unsigned long long>(options.incarnation));
  std::fflush(stdout);

  while (g_terminate == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Graceful teardown (SIGTERM only — a SIGKILLed crash never gets
  // here): stop the runtime so no handler is mid-flight, then report the
  // durability counters while the server object is still warm.
  runtime.stop();
  std::printf("STATS wal_records=%llu snapshots_written=%llu snapshots_rejected=%llu "
              "duplicate_replies=%llu\n",
              static_cast<unsigned long long>(server.wal_records()),
              static_cast<unsigned long long>(server.snapshots_written()),
              static_cast<unsigned long long>(server.snapshots_rejected()),
              static_cast<unsigned long long>(server.duplicate_replies()));
  std::fflush(stdout);
  return 0;
  // Scope unwind: cache node and server detach from the transport, THEN
  // the transport stops its loop, THEN the runtime dies — the same order
  // ShardedCluster uses in-process.
}

}  // namespace faust::sock
