// The `faust_sockd load` entry point: the loopback load generator
// (DESIGN.md D9). Runs a seeded scenario workload in ExecMode::kProcess —
// this process holds every shard's CLIENT side and spawns the shard
// worker processes itself — and prints one RESULT line so a parent
// harness (the acceptance test, the storm bench) can compare the merged
// digest against the deterministic in-process oracle without sharing any
// memory with the deployment under test.
#pragma once

#include "scenario/runner.h"

namespace faust::sock {

/// Runs the scenario (mode forced to kProcess), prints
///
///   RESULT complete=<0|1> failed=<0|1> ops=<N> puts=<N> digest=<hex>
///          p50_us=<f> p99_us=<f> max_us=<f> restarts=<N>
///          from_snapshot=<N> wal_records=<N> duplicate_replies=<N>
///          submit_bytes=<N> payload_bytes=<N> socket_bytes=<N>
///          framing_bytes=<N> reconnects=<N>
///
/// on stdout, and returns 0 iff the run completed with no client failed.
int run_load_process(const scenario::ScenarioConfig& config);

}  // namespace faust::sock
