// sock::ProcessCluster — real OS processes as deployment units
// (DESIGN.md D9).
//
// Each child is one `faust_sockd serve` worker: a shard's durable server
// (PR 7 PersistentServer) plus optionally its cache node (PR 8), behind
// a listening SocketTransport. The parent fork/execs the worker, learns
// the bound address (ephemeral TCP ports included) from the child's
// READY line on stdout, SIGKILLs it for crash injection (extending
// scenario::KillEvent to real processes), respawns it with a bumped
// incarnation for recovery-from-disk, and SIGTERMs it at the end to
// collect the durability counters from its STATS line.
//
// The stdout protocol (one line each, key=value fields):
//
//   READY addr=<uri> recovered=<none|snapshot|replay> records=<N>
//         incarnation=<K>
//   STATS wal_records=<N> snapshots_written=<N> snapshots_rejected=<N>
//         duplicate_replies=<N>
//
// Kill/restart composes with the transport-level fencing: the deployment
// layer (shard::ShardedCluster) fences the victim's NodeIds on the
// client-side transport BEFORE the SIGKILL and unfences AFTER the
// respawned child printed READY, so queued pre-crash bytes are dropped
// rather than flushed into the restarted era (socket_transport.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sock/endpoint.h"

namespace faust::sock {

/// What a child announced when it came up.
struct ReadyInfo {
  Endpoint endpoint;
  std::string recovered = "none";  // none | snapshot | replay
  std::size_t records = 0;         // WAL records delivered at recovery
  std::uint64_t incarnation = 1;
  double spawn_ms = 0;  // fork → READY wall time (includes recovery)
};

/// Durability counters a child reports at graceful shutdown.
struct ServerStats {
  std::uint64_t wal_records = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshots_rejected = 0;
  std::uint64_t duplicate_replies = 0;
  bool clean_exit = false;  // exited 0 (sanitizer-clean under ASan builds)
};

/// How shard::ShardedCluster deploys shards as processes
/// (ExecMode::kProcess; see sharded_cluster.h).
struct ProcessOptions {
  /// Path to the faust_sockd binary (tests/benches get it injected via
  /// the FAUST_SOCKD_PATH compile definition).
  std::string worker_path;
  /// true: loopback TCP (ephemeral ports); false: UDS under the
  /// durability root. The acceptance scenario runs TCP.
  bool use_tcp = false;
  /// Real duration of one executor tick on BOTH sides of the socket.
  /// Must be > 0: with tick 0 a runtime fast-forwards through timer
  /// deadlines, and a probe/timeout timer would fire virtually "late"
  /// while the real reply is still microseconds away on the wire.
  std::chrono::nanoseconds tick{1'000};
  /// Protocol timers (FaustConfig periods, mailbox delays, cache
  /// lookup_timeout) are multiplied by this for process shards: periods
  /// tuned for sim ticks are far too aggressive against real
  /// socket+scheduling latency (the satellite timeout audit).
  std::uint64_t timer_scale = 20;
  /// First `process_shards` shards run as real processes; the rest stay
  /// in-process threaded shards (the "one real shard, rest simulated"
  /// milestone). SIZE_MAX = all shards.
  std::size_t process_shards = static_cast<std::size_t>(-1);
  /// Start the worker WITHOUT its cache node even when the shard
  /// template enables the cache: CacheClients then time out their
  /// lookups against a silent endpoint and fall back to the shard path
  /// (the lookup_timeout→miss satellite test).
  bool cache_mute = false;
  /// How long to wait for a child's READY line (recovery included).
  std::chrono::milliseconds ready_timeout{30'000};
};

/// Launch/kill/restart real worker processes (see file comment).
class ProcessCluster {
 public:
  explicit ProcessCluster(std::chrono::milliseconds ready_timeout);

  /// SIGKILLs and reaps anything still running.
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Spawns `worker_path` with `args` (argv after the program name;
  /// "--incarnation <k>" is appended by the cluster) and waits for its
  /// READY line. FAUST_CHECKs on spawn or READY failure — a worker that
  /// cannot come up is a harness bug, not a scenario outcome. Returns the
  /// child's index.
  std::size_t add(std::string worker_path, std::vector<std::string> args);

  std::size_t size() const { return children_.size(); }
  bool up(std::size_t idx) const;
  const ReadyInfo& info(std::size_t idx) const;

  /// SIGKILL + reap: the crash injection. No cleanup runs in the child.
  void kill(std::size_t idx);

  /// Respawns a killed child with the same args (same durability dir,
  /// same address — an ephemeral TCP port is pinned after the first
  /// READY) and a bumped incarnation; waits for READY. Returns the new
  /// ReadyInfo (recovered= tells snapshot vs replay).
  const ReadyInfo& restart(std::size_t idx);

  /// SIGTERM, collect the STATS line, reap. nullopt when the child was
  /// not up or printed no STATS.
  std::optional<ServerStats> shutdown(std::size_t idx);

  int restarts() const { return restarts_; }
  int restarts_from_snapshot() const { return restarts_from_snapshot_; }

 private:
  struct Child {
    pid_t pid = -1;
    int out_fd = -1;  // read side of the child's stdout pipe
    std::string worker;
    std::vector<std::string> args;
    std::uint64_t incarnation = 1;
    ReadyInfo ready;
    bool up = false;
  };

  void spawn(Child& child);
  void reap(Child& child, int* status);
  /// Reads lines from the child's stdout until one starts with `prefix`
  /// (returned) or the deadline/EOF hits (nullopt).
  std::optional<std::string> read_line_with_prefix(Child& child, const char* prefix,
                                                   std::chrono::milliseconds timeout);

  const std::chrono::milliseconds ready_timeout_;
  std::vector<Child> children_;
  int restarts_ = 0;
  int restarts_from_snapshot_ = 0;
};

}  // namespace faust::sock
