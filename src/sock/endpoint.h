// Socket addresses for the real transport (DESIGN.md D9): loopback TCP
// and Unix-domain stream sockets, plus the tiny helpers the connection
// manager needs (listen with ephemeral-port resolution, nonblocking
// connect). Everything here is Linux-only plumbing; protocol code never
// sees it — it talks NodeIds through net::Transport, and the NodeId →
// Endpoint registry lives in sock::SocketTransportConfig.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace faust::sock {

/// One dialable/listenable address: "tcp:<host>:<port>" or "uds:<path>".
/// TCP port 0 asks the kernel for an ephemeral port; the bound endpoint
/// (with the real port) is resolved at listen time.
struct Endpoint {
  enum class Kind : std::uint8_t { kTcp, kUds };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  // TCP only (dotted quad)
  std::uint16_t port = 0;          // TCP only
  std::string path;                // UDS only (sun_path limit applies)

  static Endpoint tcp(std::string host, std::uint16_t port) {
    Endpoint e;
    e.kind = Kind::kTcp;
    e.host = std::move(host);
    e.port = port;
    return e;
  }
  static Endpoint uds(std::string path) {
    Endpoint e;
    e.kind = Kind::kUds;
    e.host.clear();
    e.path = std::move(path);
    return e;
  }

  /// Parses the uri() format back; nullopt on anything malformed.
  static std::optional<Endpoint> parse(std::string_view uri);

  /// "tcp:127.0.0.1:4711" / "uds:/run/faust/shard_0.sock" — the format
  /// the worker process prints in its READY line.
  std::string uri() const;

  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

/// Creates a nonblocking, close-on-exec listening socket bound to `ep`
/// (SO_REUSEADDR on TCP; a stale UDS file at `ep.path` is unlinked
/// first). Returns the fd and fills `bound` with the resolved endpoint
/// (real port for TCP port 0), or returns -1 with a description in
/// `err`. CLOEXEC matters: ProcessCluster forks workers while transports
/// hold sockets, and a leaked listen fd would keep a killed server's
/// address alive inside unrelated children.
int listen_socket(const Endpoint& ep, Endpoint& bound, std::string& err);

/// Starts a nonblocking, close-on-exec connect to `ep`. Returns the fd
/// with `in_progress` telling whether the connect is still pending
/// (completion is signalled by POLLOUT; check SO_ERROR), or -1 with a
/// description in `err`.
int connect_socket(const Endpoint& ep, bool& in_progress, std::string& err);

}  // namespace faust::sock
