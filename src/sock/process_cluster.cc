#include "sock/process_cluster.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace faust::sock {
namespace {

/// Parses "key=value" fields out of a READY/STATS line.
std::optional<std::string> field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  const std::size_t end = line.find(' ', pos);
  return line.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
}

std::uint64_t field_u64(const std::string& line, const std::string& key) {
  const auto v = field(line, key);
  return v.has_value() ? std::strtoull(v->c_str(), nullptr, 10) : 0;
}

}  // namespace

ProcessCluster::ProcessCluster(std::chrono::milliseconds ready_timeout)
    : ready_timeout_(ready_timeout) {}

ProcessCluster::~ProcessCluster() {
  for (auto& child : children_) {
    if (child.pid > 0) {
      ::kill(child.pid, SIGKILL);
      int status = 0;
      reap(child, &status);
    }
    if (child.out_fd >= 0) ::close(child.out_fd);
  }
}

std::size_t ProcessCluster::add(std::string worker_path, std::vector<std::string> args) {
  Child child;
  child.worker = std::move(worker_path);
  child.args = std::move(args);
  spawn(child);
  children_.push_back(std::move(child));
  return children_.size() - 1;
}

void ProcessCluster::spawn(Child& child) {
  int pipe_fds[2];
  FAUST_CHECK(::pipe2(pipe_fds, O_CLOEXEC) == 0);

  std::vector<std::string> argv_strings;
  argv_strings.push_back(child.worker);
  for (const auto& a : child.args) argv_strings.push_back(a);
  argv_strings.push_back("--incarnation");
  argv_strings.push_back(std::to_string(child.incarnation));
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (auto& s : argv_strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  FAUST_CHECK(pid >= 0);
  if (pid == 0) {
    // Child: stdout becomes the protocol pipe; stderr stays inherited so
    // sanitizer reports and crashes surface in the parent's terminal.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    ::close(pipe_fds[0]);
    ::execv(argv[0], argv.data());
    // exec failed; say so on the inherited stderr and die hard.
    const char* msg = "faust_sockd exec failed\n";
    [[maybe_unused]] const auto n = ::write(STDERR_FILENO, msg, std::strlen(msg));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  child.pid = pid;
  child.out_fd = pipe_fds[0];

  const auto ready = read_line_with_prefix(child, "READY ", ready_timeout_);
  FAUST_CHECK(ready.has_value() && "worker printed no READY line");
  const auto t1 = std::chrono::steady_clock::now();

  const auto addr = field(*ready, "addr");
  FAUST_CHECK(addr.has_value());
  const auto ep = Endpoint::parse(*addr);
  FAUST_CHECK(ep.has_value());
  child.ready.endpoint = *ep;
  child.ready.recovered = field(*ready, "recovered").value_or("none");
  child.ready.records = static_cast<std::size_t>(field_u64(*ready, "records"));
  child.ready.incarnation = field_u64(*ready, "incarnation");
  child.ready.spawn_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
          .count();
  child.up = true;

  // Pin an ephemeral TCP port after the first bind: a restarted child
  // must come back at the SAME address, or the client side's registry
  // would point into the void.
  for (std::size_t i = 0; i + 1 < child.args.size(); ++i) {
    if (child.args[i] == "--listen") {
      child.args[i + 1] = child.ready.endpoint.uri();
      break;
    }
  }
}

void ProcessCluster::reap(Child& child, int* status) {
  if (child.pid <= 0) return;
  ::waitpid(child.pid, status, 0);
  child.pid = -1;
  child.up = false;
}

std::optional<std::string> ProcessCluster::read_line_with_prefix(
    Child& child, const char* prefix, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::string buf;
  while (true) {
    // A complete line already buffered?
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.rfind(prefix, 0) == 0) return line;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    pollfd pfd{child.out_fd, POLLIN, 0};
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int r = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    char chunk[512];
    const auto n = ::read(child.out_fd, chunk, sizeof(chunk));
    if (n <= 0) return std::nullopt;  // EOF: the child died
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool ProcessCluster::up(std::size_t idx) const {
  FAUST_CHECK(idx < children_.size());
  return children_[idx].up;
}

const ReadyInfo& ProcessCluster::info(std::size_t idx) const {
  FAUST_CHECK(idx < children_.size());
  return children_[idx].ready;
}

void ProcessCluster::kill(std::size_t idx) {
  FAUST_CHECK(idx < children_.size());
  Child& child = children_[idx];
  FAUST_CHECK(child.pid > 0);
  ::kill(child.pid, SIGKILL);
  int status = 0;
  reap(child, &status);
  ::close(child.out_fd);
  child.out_fd = -1;
}

const ReadyInfo& ProcessCluster::restart(std::size_t idx) {
  FAUST_CHECK(idx < children_.size());
  Child& child = children_[idx];
  FAUST_CHECK(child.pid <= 0 && "restart of a live child");
  child.incarnation += 1;
  spawn(child);
  ++restarts_;
  if (child.ready.recovered == "snapshot") ++restarts_from_snapshot_;
  return child.ready;
}

std::optional<ServerStats> ProcessCluster::shutdown(std::size_t idx) {
  FAUST_CHECK(idx < children_.size());
  Child& child = children_[idx];
  if (child.pid <= 0) return std::nullopt;
  ::kill(child.pid, SIGTERM);
  const auto stats_line = read_line_with_prefix(child, "STATS ", ready_timeout_);
  int status = 0;
  reap(child, &status);
  ::close(child.out_fd);
  child.out_fd = -1;
  if (!stats_line.has_value()) return std::nullopt;
  ServerStats stats;
  stats.wal_records = field_u64(*stats_line, "wal_records");
  stats.snapshots_written = field_u64(*stats_line, "snapshots_written");
  stats.snapshots_rejected = field_u64(*stats_line, "snapshots_rejected");
  stats.duplicate_replies = field_u64(*stats_line, "duplicate_replies");
  stats.clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  return stats;
}

}  // namespace faust::sock
