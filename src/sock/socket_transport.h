// sock::SocketTransport — a real TCP / Unix-domain-socket implementation
// of net::Transport with a connection manager (DESIGN.md D9).
//
// One transport instance is one process's view of the fabric: local
// protocol objects attach under their NodeIds exactly as they do on
// net::Network, remote NodeIds are resolved through a static NodeId →
// Endpoint registry (config.peers), and everything else — framing,
// connection pooling, reconnect — is the transport's problem. In the
// spirit of tcpm.c (ROADMAP): one nonblocking poll() event loop on its
// own thread owns every fd; connections are pooled per ENDPOINT, so two
// NodeIds served by the same process (a shard's server and its cache
// node) share one stream; inbound DATA teaches the transport a return
// route per source NodeId, so a server process never dials its clients.
//
// Delivery: completed DATA frames are posted onto the deployment's
// exec::Executor (a rt::ThreadedRuntime — the loop thread is a third
// poster alongside the owner thread and timers, which the runtime's
// any-thread post contract already covers). Posts happen in receive
// order from one loop thread, and the runtime runs tasks in post order,
// so FIFO per (from,to) holds end to end over one connection. Payload
// buffers arrive as std::shared_ptr<const Bytes> straight from the frame
// decoder — the zero-copy on_shared_message path survives the socket
// hop. sim::Scheduler is NOT a legal executor here: it is
// single-threaded and the loop thread could not post into it.
//
// Outbound: send() may be called from any thread. It stamps the
// per-channel counters, frames the message, and hands it to the loop
// through a wake pipe; the loop routes it to the pooled connection
// (dialling lazily, nonblocking) or parks it in the per-peer pending
// queue while the dial is in flight. Queues are BOUNDED
// (config.send_queue_bytes): a peer that stays down long enough to
// overflow its queue costs drops, never memory — the protocol layer
// already survives loss via resubmit. Dial failures back off
// exponentially (config.backoff_min..backoff_max) while pending bytes
// wait.
//
// Crash semantics composing with PR 7 epoch fencing: fence(id) makes the
// transport drop everything to AND from `id` — including bytes already
// queued — until unfence(id); the deployment layer fences a server's
// NodeIds before SIGKILLing its process, mirroring net::Network::kill().
// Independently, every connection starts with a HELLO frame carrying the
// process incarnation: a dialled connection announcing an incarnation
// LOWER than the highest this transport has seen for that endpoint is a
// zombie of a dead era and is closed before any of its DATA is
// delivered; and because a connection's rx buffers die with it, a
// pre-crash byte can never be parsed into a post-restart delivery. So
// pre-crash bytes never reach a restarted-era peer, which is the
// invariant the client's unsolicited-reply check relies on.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "net/network.h"  // ChannelStats / TypeStats (counter mirror)
#include "net/transport.h"
#include "sock/endpoint.h"
#include "sock/frame.h"

namespace faust::sock {

/// Knobs for one SocketTransport.
struct SocketTransportConfig {
  /// Listen here for inbound connections (server side). nullopt: outbound
  /// only (client side). TCP port 0 resolves to a real port at
  /// construction — read it back via bound_endpoint().
  std::optional<Endpoint> listen;
  /// NodeId → address registry for peers this side dials. Multiple
  /// NodeIds may share an endpoint (connection pooling: one stream).
  std::map<NodeId, Endpoint> peers;
  /// Announced in the HELLO frame; bump on every process restart so
  /// zombie connections from a previous era are recognisable.
  std::uint64_t incarnation = 1;
  /// Decoder bound; a length prefix above this poisons the connection.
  std::size_t max_frame_bytes = 64u << 20;
  /// Per-endpoint bound on bytes queued towards a peer (pending + not
  /// yet written). Overflow drops the message (counted).
  std::size_t send_queue_bytes = 32u << 20;
  /// Dial retry backoff bounds: the delay after each failed dial is drawn
  /// by decorrelated jitter within [backoff_min, backoff_max] (see
  /// next_backoff below) while sends are pending.
  std::chrono::milliseconds backoff_min{2};
  std::chrono::milliseconds backoff_max{500};
};

/// D10 decorrelated-jitter redial backoff: next = min(cap, uniform[base,
/// prev*3]), with prev <= 0 (first failure) yielding exactly `base`.
/// Unlike truncated binary exponential backoff, successive delays WANDER
/// within [base, cap] instead of marching through the same power-of-two
/// ladder — which is what desynchronizes a fleet of clients redialling a
/// recovering peer (the reconnect-storm regression test pins the spread).
/// Pure: all state is the caller's `prev` and the rng.
std::chrono::milliseconds next_backoff(std::chrono::milliseconds base,
                                       std::chrono::milliseconds cap,
                                       std::chrono::milliseconds prev, Rng& rng);

/// D10 chaos shim knobs (fault injection on a LIVE transport; applied via
/// SocketTransport::set_chaos). All independent; default = no chaos.
struct ChaosOptions {
  /// Traffic to or from these NodeIds is silently dropped at this
  /// transport — an asymmetric partition as seen from this process (the
  /// peer's own transport keeps sending into the void unless it
  /// blackholes too).
  std::unordered_set<NodeId> blackhole;
  /// Extra delivery latency for frames received over a socket (local
  /// loopback sends are not delayed). FIFO per connection is preserved:
  /// the delay is constant, applied in receive order.
  std::chrono::milliseconds rx_latency{0};
  /// Max payload-stream bytes per write() pass per connection (0 = off):
  /// dribbles frames onto the wire a few bytes at a time, forcing the
  /// receiving decoder through every partial-frame state.
  std::size_t write_dribble_bytes = 0;
};

/// Socket-level counters (beyond the per-channel payload mirror).
struct WireStats {
  std::uint64_t frames_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t socket_bytes_out = 0;  // everything written, framing included
  std::uint64_t socket_bytes_in = 0;   // everything read
  std::uint64_t framing_bytes_out = 0;  // header + HELLO share of bytes_out
  std::uint64_t connects = 0;           // dials that completed
  std::uint64_t accepts = 0;
  std::uint64_t reconnects = 0;       // dials after a previously-up conn died
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;      // established conns closed (peer death
                                      // or teardown); failed dials excluded
  std::uint64_t fenced_drops = 0;     // sends/receives dropped by fence()
  std::uint64_t overflow_drops = 0;   // send_queue_bytes exceeded
  std::uint64_t down_drops = 0;       // queued bytes discarded when a conn died
  std::uint64_t unroutable_drops = 0;  // no registry entry and no learned route
  std::uint64_t framing_errors = 0;    // poisoned decoders (conn closed)
  std::uint64_t stale_era_drops = 0;   // zombie-incarnation conns closed
  std::uint64_t chaos_blackholed = 0;  // messages dropped by the chaos shim
  std::uint64_t chaos_delayed = 0;     // deliveries held by chaos rx_latency
  std::uint64_t chaos_resets = 0;      // conns killed by inject_reset()
};

/// Real-socket Transport (see file comment).
class SocketTransport final : public net::Transport {
 public:
  /// `exec` is where deliveries run; it must be a thread-safe executor
  /// (rt::ThreadedRuntime) and must outlive this transport. The
  /// constructor binds the listen socket (if any) and starts the loop
  /// thread; FAUST_CHECKs on bind failure (deployment bug, not input).
  SocketTransport(exec::Executor& exec, SocketTransportConfig config);

  /// Stops the loop thread and closes every socket. Messages already
  /// posted onto the executor stay valid (they own their buffers).
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // net::Transport ------------------------------------------------------

  void attach(NodeId id, net::Node& node) override;
  void detach(NodeId id) override;

  /// Any-thread. Local `to` (attached here) delivers through the
  /// executor without touching a socket; remote `to` goes through the
  /// connection manager. Unroutable or fenced messages are dropped and
  /// counted.
  void send(NodeId from, NodeId to, Bytes msg) override;

  // Crash fencing -------------------------------------------------------

  /// Drops traffic to and from `id` — including bytes already queued
  /// towards it — until unfence(id). Mirrors net::Network::kill() for the
  /// deployment layer's process kills.
  void fence(NodeId id);
  void unfence(NodeId id);
  bool fenced(NodeId id) const;

  // Chaos shim (D10 network-fault injection) ---------------------------

  /// Installs (or replaces) the chaos rules; {} clears them. Any-thread.
  /// Unlike fence(), chaos never purges already-queued bytes — it shapes
  /// live traffic only, so healing is instant and loss-free.
  void set_chaos(ChaosOptions chaos);

  /// Asynchronously closes EVERY established connection — mid-frame when
  /// a partial frame is on the wire — exercising the reconnect path and
  /// the peer decoder's truncated-stream handling. Dials resume under the
  /// normal backoff policy. Completion is observable via
  /// wire().chaos_resets.
  void inject_reset();

  // Introspection -------------------------------------------------------

  /// The resolved listen endpoint (real port for TCP port 0).
  const Endpoint& bound_endpoint() const { return bound_; }

  std::uint64_t incarnation() const { return config_.incarnation; }

  /// Per-channel payload counters, mirroring net::Network: bytes here are
  /// PAYLOAD bytes (what the protocol put on the channel), so bytes/op
  /// numbers are comparable across Network, ThreadBus and sockets; the
  /// framing overhead is reported separately in wire(). Counted at
  /// send(), tagged by the leading payload byte (ustor::MsgType).
  net::ChannelStats total() const;
  net::Network::TypeStats total_by_type() const;
  net::ChannelStats total_for(std::uint8_t tag) const;
  net::ChannelStats channel(NodeId from, NodeId to) const;
  net::ChannelStats channel_for(NodeId from, NodeId to, std::uint8_t tag) const;

  /// Socket-level counters (framing overhead, reconnects, drops).
  WireStats wire() const;

 private:
  struct LocalNode {
    std::mutex mu;
    net::Node* node = nullptr;
  };
  struct Peer;
  struct Conn {
    int fd = -1;
    bool dialed = false;
    bool connecting = false;  // nonblocking connect still in flight
    bool hello_seen = false;
    std::uint64_t peer_incarnation = 0;
    FrameDecoder decoder;
    Peer* peer = nullptr;  // owner for dialed conns; null for accepted
    // Whole frames queued for write; head may be partially written.
    std::deque<std::pair<NodeId, Bytes>> txq;
    std::size_t tx_off = 0;
    std::size_t txq_bytes = 0;
    explicit Conn(std::size_t max_frame) : decoder(max_frame) {}
  };
  struct Peer {  // one dialable endpoint (pooled across NodeIds)
    Endpoint ep;
    Conn* conn = nullptr;
    bool was_up = false;  // a previous conn reached established
    std::deque<std::pair<NodeId, Bytes>> pending;  // queued while not up
    std::size_t pending_bytes = 0;
    int attempts = 0;
    std::chrono::milliseconds backoff{0};  // decorrelated-jitter state
    std::chrono::steady_clock::time_point next_dial{};
    std::uint64_t max_incarnation = 0;
  };
  struct Outgoing {
    NodeId from;
    NodeId to;
    Bytes frame;  // already framed
  };

  // Loop-thread only ----------------------------------------------------
  void loop();
  void purge_fenced();
  void apply_chaos_reset();
  void flush_delayed(std::chrono::steady_clock::time_point now);
  void drain_ingress();
  void route_frame(Outgoing&& out);
  void ensure_dialing(Peer& peer);
  void on_dial_failure(Peer& peer);
  void on_dial_result(Conn& conn, bool ok);
  void flush_write_stats(std::uint64_t bytes, std::uint64_t frames,
                         std::uint64_t framing);
  void conn_established(Conn& conn);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void on_frame(Conn& conn, Frame&& f);
  void close_conn(Conn& conn, bool count_down_drops);
  void accept_ready();
  void deliver(NodeId from, NodeId to, std::shared_ptr<const Bytes> payload);
  void enqueue_frame(Conn& conn, NodeId to, Bytes frame);
  void wake();

  exec::Executor& exec_;
  const SocketTransportConfig config_;
  Endpoint bound_{};
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> fence_dirty_{false};
  // Chaos shim: lock-free knobs for the hot paths; the blackhole set
  // lives under mu_ (checked where mu_ is already held).
  std::atomic<bool> chaos_reset_{false};
  std::atomic<long> chaos_latency_ms_{0};
  std::atomic<std::size_t> chaos_dribble_{0};

  // Shared state (send()/attach()/fence() side), under mu_.
  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<LocalNode>> nodes_;
  std::unordered_set<NodeId> fenced_;
  std::deque<Outgoing> ingress_;  // handed to the loop via wake()
  struct ChannelCounters {
    net::ChannelStats stats;
    net::Network::TypeStats by_type{};
  };
  std::map<std::pair<NodeId, NodeId>, ChannelCounters> channels_;
  ChannelCounters total_{};
  WireStats wire_{};
  std::unordered_set<NodeId> chaos_blackhole_;  // under mu_

  // Loop-owned topology (loop thread only; no lock needed).
  std::map<Endpoint, std::unique_ptr<Peer>> peers_;       // pooled by endpoint
  std::unordered_map<NodeId, Peer*> static_routes_;       // from config.peers
  std::unordered_map<NodeId, Conn*> learned_routes_;      // inbound DATA sources
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Deliveries held back by chaos rx_latency, due-ordered (constant
  /// delay ⇒ push order IS due order; FIFO per channel is preserved).
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    NodeId from = 0;
    NodeId to = 0;
    std::shared_ptr<const Bytes> payload;
  };
  std::deque<Delayed> delayed_;
  Rng backoff_rng_;  // loop-thread only (decorrelated-jitter draws)
};

}  // namespace faust::sock
