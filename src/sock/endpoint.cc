#include "sock/endpoint.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace faust::sock {
namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int open_stream_socket(int domain, std::string& err) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) err = errno_string("socket");
  return fd;
}

bool fill_tcp_addr(const Endpoint& ep, sockaddr_in& addr, std::string& err) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    err = "bad IPv4 host '" + ep.host + "'";
    return false;
  }
  return true;
}

bool fill_uds_addr(const Endpoint& ep, sockaddr_un& addr, std::string& err) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) {
    err = "UDS path too long (" + std::to_string(ep.path.size()) + " >= " +
          std::to_string(sizeof(addr.sun_path)) + "): " + ep.path;
    return false;
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

}  // namespace

std::optional<Endpoint> Endpoint::parse(std::string_view uri) {
  if (uri.rfind("uds:", 0) == 0) {
    const std::string_view path = uri.substr(4);
    if (path.empty()) return std::nullopt;
    return Endpoint::uds(std::string(path));
  }
  if (uri.rfind("tcp:", 0) == 0) {
    const std::string_view rest = uri.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    const std::string_view host = rest.substr(0, colon);
    const std::string_view port_str = rest.substr(colon + 1);
    if (port_str.empty() || port_str.size() > 5) return std::nullopt;
    std::uint32_t port = 0;
    for (const char c : port_str) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (port > 65535) return std::nullopt;
    return Endpoint::tcp(std::string(host), static_cast<std::uint16_t>(port));
  }
  return std::nullopt;
}

std::string Endpoint::uri() const {
  if (kind == Kind::kUds) return "uds:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

int listen_socket(const Endpoint& ep, Endpoint& bound, std::string& err) {
  bound = ep;
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int fd = open_stream_socket(AF_INET, err);
    if (fd < 0) return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    if (!fill_tcp_addr(ep, addr, err) ||
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      if (err.empty()) err = errno_string("bind/listen");
      ::close(fd);
      return -1;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound.port = ntohs(addr.sin_port);
    }
    return fd;
  }
  const int fd = open_stream_socket(AF_UNIX, err);
  if (fd < 0) return -1;
  sockaddr_un addr;
  if (!fill_uds_addr(ep, addr, err)) {
    ::close(fd);
    return -1;
  }
  ::unlink(ep.path.c_str());  // a stale socket file from a killed process
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    err = errno_string("bind/listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_socket(const Endpoint& ep, bool& in_progress, std::string& err) {
  in_progress = false;
  const int domain = ep.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = open_stream_socket(domain, err);
  if (fd < 0) return -1;

  sockaddr_storage storage;
  socklen_t len = 0;
  if (ep.kind == Endpoint::Kind::kTcp) {
    sockaddr_in addr;
    if (!fill_tcp_addr(ep, addr, err)) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
  } else {
    sockaddr_un addr;
    if (!fill_uds_addr(ep, addr, err)) {
      ::close(fd);
      return -1;
    }
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
  }

  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) == 0) return fd;
  if (errno == EINPROGRESS || errno == EAGAIN) {
    in_progress = true;
    return fd;
  }
  err = errno_string("connect");
  ::close(fd);
  return -1;
}

}  // namespace faust::sock
