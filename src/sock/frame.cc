#include "sock/frame.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace faust::sock {
namespace {

constexpr std::size_t kPrefixBytes = 4;          // u32 len
constexpr std::size_t kKindOffset = kPrefixBytes;
constexpr std::size_t kMinHeader = kPrefixBytes + 1;  // len + kind
constexpr std::size_t kDataHeaderLen = 9;   // from + to + at-least-empty payload
constexpr std::size_t kHelloBodyLen = 9;    // kind + incarnation

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32le(p)) |
         (static_cast<std::uint64_t>(read_u32le(p + 4)) << 32);
}

std::int32_t read_i32le(const std::uint8_t* p) {
  return static_cast<std::int32_t>(read_u32le(p));
}

}  // namespace

Bytes encode_data_frame(NodeId from, NodeId to, BytesView payload) {
  Bytes out;
  out.reserve(kDataFrameOverhead + payload.size());
  append_u32(out, static_cast<std::uint32_t>(kDataHeaderLen + payload.size()));
  append_byte(out, kFrameData);
  append_u32(out, static_cast<std::uint32_t>(from));
  append_u32(out, static_cast<std::uint32_t>(to));
  append(out, payload);
  return out;
}

Bytes encode_hello_frame(std::uint64_t incarnation) {
  Bytes out;
  out.reserve(kHelloFrameBytes);
  append_u32(out, static_cast<std::uint32_t>(kHelloBodyLen));
  append_byte(out, kFrameHello);
  append_u64(out, incarnation);
  return out;
}

std::pair<std::uint8_t*, std::size_t> FrameDecoder::next_span() {
  if (poisoned_) return {nullptr, 0};
  if (stage_ == Stage::kHeader) return {head_ + head_have_, head_need_ - head_have_};
  return {payload_->data() + payload_have_, payload_->size() - payload_have_};
}

bool FrameDecoder::finish_header(const Sink& sink) {
  const std::uint32_t len = read_u32le(head_);
  const std::uint8_t kind = head_[kKindOffset];

  if (head_need_ == kMinHeader) {
    // Prefix + kind just completed: validate and learn how much fixed
    // header follows. Both kinds carry 8 more fixed bytes.
    if (len > max_frame_bytes_) return poison("frame length exceeds max_frame_bytes");
    if (kind == kFrameData) {
      if (len < kDataHeaderLen) return poison("DATA frame shorter than its header");
    } else if (kind == kFrameHello) {
      if (len != kHelloBodyLen) return poison("HELLO frame with wrong length");
    } else {
      return poison("unknown frame kind");
    }
    head_need_ = kMinHeader + 8;
    return true;
  }

  // Full fixed header in hand.
  frame_ = Frame{};
  frame_.kind = kind;
  if (kind == kFrameHello) {
    frame_.incarnation = read_u64le(head_ + kMinHeader);
    ++frames_;
    sink(std::move(frame_));
    stage_ = Stage::kHeader;
    head_have_ = 0;
    head_need_ = kMinHeader;
    return true;
  }

  frame_.from = read_i32le(head_ + kMinHeader);
  frame_.to = read_i32le(head_ + kMinHeader + 4);
  const std::size_t payload_len = len - kDataHeaderLen;
  payload_ = std::make_shared<Bytes>(payload_len);
  payload_have_ = 0;
  if (payload_len == 0) {
    frame_.payload = std::move(payload_);
    ++frames_;
    sink(std::move(frame_));
    stage_ = Stage::kHeader;
    head_have_ = 0;
    head_need_ = kMinHeader;
    return true;
  }
  stage_ = Stage::kPayload;
  head_have_ = 0;
  head_need_ = kMinHeader;
  return true;
}

bool FrameDecoder::commit(std::size_t n, const Sink& sink) {
  if (poisoned_) return false;
  if (n == 0) return true;
  if (stage_ == Stage::kHeader) {
    FAUST_CHECK(head_have_ + n <= head_need_);
    head_have_ += n;
    if (head_have_ < head_need_) return true;
    return finish_header(sink);
  }
  FAUST_CHECK(payload_have_ + n <= payload_->size());
  payload_have_ += n;
  if (payload_have_ < payload_->size()) return true;
  frame_.payload = std::move(payload_);
  ++frames_;
  sink(std::move(frame_));
  stage_ = Stage::kHeader;
  return true;
}

bool FrameDecoder::feed(BytesView data, const Sink& sink) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (poisoned_) return false;
    auto [dst, room] = next_span();
    const std::size_t take = std::min(room, data.size() - off);
    std::memcpy(dst, data.data() + off, take);
    if (!commit(take, sink)) return false;
    off += take;
  }
  return !poisoned_;
}

}  // namespace faust::sock
