// Wire framing for the socket transport (DESIGN.md D9).
//
// A stream carries a sequence of length-prefixed frames:
//
//   [u32 LE len] [u8 kind] [kind-specific header] [payload]
//
// `len` counts everything AFTER the 4-byte prefix. Two kinds:
//
//   DATA  (kind 1): [i32 LE from] [i32 LE to] [payload]   len >= 9
//   HELLO (kind 2): [u64 LE incarnation]                  len == 9
//
// HELLO is the first frame on every connection, in both directions; its
// incarnation number is how epoch fencing survives real sockets (a
// restarted server announces a higher incarnation, so a connection to a
// dead era is recognisable and droppable — see socket_transport.h).
//
// FrameDecoder reassembles frames from arbitrary read boundaries. The
// payload of a DATA frame is read DIRECTLY into a heap buffer that is
// handed to the receiver as std::shared_ptr<const Bytes>, preserving the
// zero-copy on_shared_message path: kernel → payload buffer is the only
// copy on the receive side, and the USTOR server can pin value slices of
// that buffer without another one.
//
// This is untrusted input (the peer may be an adversary or a corrupted
// stream): a length prefix above max_frame_bytes, an unknown kind, or a
// DATA frame shorter than its header poisons the decoder — the caller
// must close the connection. Truncation mid-frame is NOT an error; the
// decoder just waits for more bytes (the fuzz suite drives every split
// point, tests/sock_fuzz_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/ids.h"

namespace faust::sock {

inline constexpr std::uint8_t kFrameData = 1;
inline constexpr std::uint8_t kFrameHello = 2;

/// Bytes a DATA frame adds on the socket beyond its payload: the u32
/// length prefix, the kind byte and the two NodeIds. The transport's
/// framing-overhead counter is frames * this.
inline constexpr std::size_t kDataFrameOverhead = 4 + 1 + 4 + 4;

/// Bytes of a whole HELLO frame (prefix + kind + incarnation).
inline constexpr std::size_t kHelloFrameBytes = 4 + 1 + 8;

/// Encodes a DATA frame (one copy of the payload, exact-size buffer).
Bytes encode_data_frame(NodeId from, NodeId to, BytesView payload);

/// Encodes a HELLO frame.
Bytes encode_hello_frame(std::uint64_t incarnation);

/// One decoded frame, handed to the sink as soon as it completes.
struct Frame {
  std::uint8_t kind = 0;
  // DATA:
  NodeId from = 0;
  NodeId to = 0;
  std::shared_ptr<const Bytes> payload;  // never null for DATA (may be empty)
  // HELLO:
  std::uint64_t incarnation = 0;
};

/// Incremental frame reassembly (see file comment).
///
/// The read loop asks `next_span()` where the next socket read should
/// land and for how many bytes at most, reads there, then `commit(n)`s
/// what actually arrived; completed frames are emitted through the sink.
/// Header bytes land in a small internal buffer; DATA payload bytes land
/// in the frame's own shared buffer (no reassembly copy).
class FrameDecoder {
 public:
  using Sink = std::function<void(Frame&&)>;

  explicit FrameDecoder(std::size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

  /// Where to put the next bytes, and how many fit. Never returns a zero
  /// span unless poisoned.
  std::pair<std::uint8_t*, std::size_t> next_span();

  /// Consumes `n` bytes previously written into next_span() (n <= the
  /// span size). Emits every frame that completed. Returns false once the
  /// stream is poisoned (bad length/kind); the connection must be closed
  /// — no byte after the poison point is interpreted.
  bool commit(std::size_t n, const Sink& sink);

  /// Convenience for tests/fuzzing: copies `data` through
  /// next_span()/commit() in maximal chunks.
  bool feed(BytesView data, const Sink& sink);

  bool poisoned() const { return poisoned_; }

  /// Diagnostic for the poison reason ("" while healthy).
  const char* error() const { return error_; }

  std::uint64_t frames_decoded() const { return frames_; }

 private:
  enum class Stage : std::uint8_t { kHeader, kPayload };

  bool poison(const char* why) {
    poisoned_ = true;
    error_ = why;
    return false;
  }
  bool finish_header(const Sink& sink);

  const std::size_t max_frame_bytes_;
  Stage stage_ = Stage::kHeader;
  // Prefix + kind + the fixed kind-specific header (9 bytes max).
  std::uint8_t head_[4 + 1 + 9] = {};
  std::size_t head_have_ = 0;
  std::size_t head_need_ = 4 + 1;  // grows once the kind is known
  Frame frame_{};
  std::shared_ptr<Bytes> payload_;  // DATA payload under construction
  std::size_t payload_have_ = 0;
  bool poisoned_ = false;
  const char* error_ = "";
  std::uint64_t frames_ = 0;
};

}  // namespace faust::sock
