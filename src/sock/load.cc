#include "sock/load.h"

#include <cstdio>

#include "common/hex.h"

namespace faust::sock {

int run_load_process(const scenario::ScenarioConfig& config) {
  scenario::ScenarioConfig cfg = config;
  cfg.mode = shard::ExecMode::kProcess;
  const scenario::ScenarioResult r = scenario::run_scenario(cfg);
  const std::string digest = hex_encode(BytesView(r.merged_digest.data(), r.merged_digest.size()));
  std::printf(
      "RESULT complete=%d failed=%d ops=%llu puts=%llu digest=%s p50_us=%.1f "
      "p99_us=%.1f max_us=%.1f restarts=%d from_snapshot=%d wal_records=%llu "
      "duplicate_replies=%llu submit_bytes=%llu payload_bytes=%llu "
      "socket_bytes=%llu framing_bytes=%llu reconnects=%llu\n",
      r.complete ? 1 : 0, r.any_failed ? 1 : 0,
      static_cast<unsigned long long>(r.ops), static_cast<unsigned long long>(r.puts),
      digest.c_str(), r.p50_us, r.p99_us, r.max_us, r.restarts,
      r.restarts_from_snapshot, static_cast<unsigned long long>(r.wal_records),
      static_cast<unsigned long long>(r.duplicate_replies),
      static_cast<unsigned long long>(r.submit_payload_bytes),
      static_cast<unsigned long long>(r.wire_payload_bytes),
      static_cast<unsigned long long>(r.wire_socket_bytes),
      static_cast<unsigned long long>(r.wire_framing_bytes),
      static_cast<unsigned long long>(r.wire_reconnects));
  std::fflush(stdout);
  return r.complete && !r.any_failed ? 0 : 1;
}

}  // namespace faust::sock
