#include "sock/socket_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>

#include "common/check.h"

namespace faust::sock {
namespace {

std::uint8_t leading_tag(const Bytes& msg) { return msg.empty() ? 0 : msg[0]; }

}  // namespace

std::chrono::milliseconds next_backoff(std::chrono::milliseconds base,
                                       std::chrono::milliseconds cap,
                                       std::chrono::milliseconds prev, Rng& rng) {
  if (base.count() <= 0) base = std::chrono::milliseconds{1};
  if (cap < base) cap = base;
  if (prev < base) return base;  // first failure: exactly the floor
  const auto lo = static_cast<std::uint64_t>(base.count());
  const auto hi = std::min(static_cast<std::uint64_t>(cap.count()),
                           static_cast<std::uint64_t>(prev.count()) * 3);
  if (hi <= lo) return base;
  return std::chrono::milliseconds(static_cast<std::int64_t>(rng.next_in(lo, hi)));
}

SocketTransport::SocketTransport(exec::Executor& exec, SocketTransportConfig config)
    : exec_(exec),
      config_(std::move(config)),
      backoff_rng_(0x5851F42D4C957F2DULL ^ config_.incarnation) {
  int pipe_fds[2];
  FAUST_CHECK(::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) == 0);
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  if (config_.listen.has_value()) {
    std::string err;
    listen_fd_ = listen_socket(*config_.listen, bound_, err);
    if (listen_fd_ < 0) {
      FAUST_CHECK(false && "SocketTransport listen failed");  // deployment bug
    }
  }

  // Pool peers by endpoint: NodeIds sharing an address share a stream.
  for (const auto& [id, ep] : config_.peers) {
    auto it = peers_.find(ep);
    if (it == peers_.end()) {
      auto peer = std::make_unique<Peer>();
      peer->ep = ep;
      it = peers_.emplace(ep, std::move(peer)).first;
    }
    static_routes_[id] = it->second.get();
  }

  loop_thread_ = std::thread([this] { loop(); });
}

SocketTransport::~SocketTransport() {
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (config_.listen.has_value() && bound_.kind == Endpoint::Kind::kUds) {
    ::unlink(bound_.path.c_str());
  }
  ::close(wake_rd_);
  ::close(wake_wr_);
}

void SocketTransport::attach(NodeId id, net::Node& node) {
  std::shared_ptr<LocalNode> box;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = nodes_[id];
    if (slot == nullptr) slot = std::make_shared<LocalNode>();
    box = slot;
  }
  std::lock_guard<std::mutex> node_lock(box->mu);
  box->node = &node;
}

void SocketTransport::detach(NodeId id) {
  std::shared_ptr<LocalNode> box;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;
    box = it->second;
  }
  std::lock_guard<std::mutex> node_lock(box->mu);
  box->node = nullptr;
}

void SocketTransport::send(NodeId from, NodeId to, Bytes msg) {
  std::shared_ptr<LocalNode> local;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (fenced_.count(to) > 0 || fenced_.count(from) > 0) {
      ++wire_.fenced_drops;
      return;
    }
    if (!chaos_blackhole_.empty() &&
        (chaos_blackhole_.count(to) > 0 || chaos_blackhole_.count(from) > 0)) {
      ++wire_.chaos_blackholed;
      return;
    }
    // Payload counters stamped for every accepted message, local or
    // remote, so bytes/op match the Network/ThreadBus mirrors.
    const std::uint8_t tag = leading_tag(msg);
    const std::size_t bucket = tag < net::Network::kTypeBuckets ? tag : 0;
    auto& ch = channels_[{from, to}];
    ch.stats.messages += 1;
    ch.stats.bytes += msg.size();
    ch.by_type[bucket].messages += 1;
    ch.by_type[bucket].bytes += msg.size();
    total_.stats.messages += 1;
    total_.stats.bytes += msg.size();
    total_.by_type[bucket].messages += 1;
    total_.by_type[bucket].bytes += msg.size();

    // Local targets are decided by box presence alone (a box exists once
    // the node was ever attached here); whether the node is CURRENTLY
    // attached is checked at delivery time, under the box lock — taking
    // it here would invert the box→mu_ lock order delivery tasks use.
    auto it = nodes_.find(to);
    if (it != nodes_.end()) local = it->second;
    if (local == nullptr) {
      Outgoing out;
      out.from = from;
      out.to = to;
      out.frame = encode_data_frame(from, to, BytesView(msg));
      ingress_.push_back(std::move(out));
    }
  }
  if (local != nullptr) {
    // Loopback without a socket: same executor hand-off as a received
    // frame, so ordering and threading look identical either way.
    deliver(from, to, std::make_shared<const Bytes>(std::move(msg)));
    return;
  }
  wake();
}

void SocketTransport::fence(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fenced_.insert(id);
    // Frames already handed over but not yet routed die here too.
    auto it = ingress_.begin();
    while (it != ingress_.end()) {
      if (it->to == id || it->from == id) {
        ++wire_.fenced_drops;
        it = ingress_.erase(it);
      } else {
        ++it;
      }
    }
  }
  fence_dirty_.store(true, std::memory_order_release);
  wake();
}

void SocketTransport::unfence(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  fenced_.erase(id);
}

bool SocketTransport::fenced(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_.count(id) > 0;
}

void SocketTransport::set_chaos(ChaosOptions chaos) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    chaos_blackhole_ = std::move(chaos.blackhole);
  }
  chaos_latency_ms_.store(static_cast<long>(chaos.rx_latency.count()),
                          std::memory_order_relaxed);
  chaos_dribble_.store(chaos.write_dribble_bytes, std::memory_order_relaxed);
  wake();  // re-evaluate poll deadlines under the new rules
}

void SocketTransport::inject_reset() {
  chaos_reset_.store(true, std::memory_order_release);
  wake();
}

net::ChannelStats SocketTransport::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.stats;
}

net::Network::TypeStats SocketTransport::total_by_type() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.by_type;
}

net::ChannelStats SocketTransport::total_for(std::uint8_t tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.by_type[tag < net::Network::kTypeBuckets ? tag : 0];
}

net::ChannelStats SocketTransport::channel(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find({from, to});
  return it == channels_.end() ? net::ChannelStats{} : it->second.stats;
}

net::ChannelStats SocketTransport::channel_for(NodeId from, NodeId to,
                                               std::uint8_t tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find({from, to});
  if (it == channels_.end()) return {};
  return it->second.by_type[tag < net::Network::kTypeBuckets ? tag : 0];
}

WireStats SocketTransport::wire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wire_;
}

void SocketTransport::wake() {
  const std::uint8_t b = 1;
  // EAGAIN means a wake byte is already pending — good enough.
  [[maybe_unused]] const auto n = ::write(wake_wr_, &b, 1);
}

// ---------------------------------------------------------------------------
// Loop thread
// ---------------------------------------------------------------------------

void SocketTransport::loop() {
  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;

  while (!stopping_.load(std::memory_order_acquire)) {
    if (fence_dirty_.exchange(false, std::memory_order_acq_rel)) purge_fenced();
    if (chaos_reset_.exchange(false, std::memory_order_acq_rel)) apply_chaos_reset();
    drain_ingress();

    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfd_conns.push_back(nullptr);
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conns.push_back(nullptr);
    }
    for (auto& conn : conns_) {
      if (conn->fd < 0) continue;
      short events = POLLIN;
      if (conn->connecting || !conn->txq.empty()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      pfd_conns.push_back(conn.get());
    }

    // Block until I/O, a wake, the next dial-retry deadline, or the next
    // chaos-delayed delivery falling due.
    int timeout_ms = -1;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [ep, peer] : peers_) {
      if (peer->conn != nullptr || peer->pending.empty()) continue;
      const auto dt =
          std::chrono::duration_cast<std::chrono::milliseconds>(peer->next_dial - now);
      const int ms = std::max<int>(0, static_cast<int>(dt.count()));
      if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
    }
    if (!delayed_.empty()) {
      const auto dt = std::chrono::duration_cast<std::chrono::milliseconds>(
          delayed_.front().due - now);
      const int ms = std::max<int>(0, static_cast<int>(dt.count()));
      if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable; tear down

    if (pfds[0].revents & POLLIN) {
      std::uint8_t buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    std::size_t idx = 1;
    if (listen_fd_ >= 0) {
      if (pfds[idx].revents & POLLIN) accept_ready();
      ++idx;
    }
    for (; idx < pfds.size(); ++idx) {
      Conn* conn = pfd_conns[idx];
      if (conn == nullptr || conn->fd < 0) continue;
      const short re = pfds[idx].revents;
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        if (conn->connecting) {
          on_dial_result(*conn, false);
        } else if (re & POLLHUP) {
          // Half-close: drain what is readable, then close on EOF.
          if (re & POLLIN) handle_readable(*conn);
          if (conn->fd >= 0) close_conn(*conn, true);
        } else {
          close_conn(*conn, true);
        }
        continue;
      }
      if (re & POLLOUT) handle_writable(*conn);
      if (conn->fd >= 0 && (re & POLLIN)) handle_readable(*conn);
    }

    // Dial retries whose backoff expired.
    const auto after = std::chrono::steady_clock::now();
    flush_delayed(after);
    for (auto& [ep, peer] : peers_) {
      if (peer->conn == nullptr && !peer->pending.empty() && peer->next_dial <= after) {
        ensure_dialing(*peer);
      }
    }

    // Sweep closed connections.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) { return c->fd < 0; }),
                 conns_.end());
  }
}

void SocketTransport::purge_fenced() {
  std::unordered_set<NodeId> fenced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fenced = fenced_;
  }
  if (fenced.empty()) return;
  std::uint64_t drops = 0;
  const auto is_fenced = [&fenced](NodeId id) { return fenced.count(id) > 0; };
  for (auto& [ep, peer] : peers_) {
    auto it = peer->pending.begin();
    while (it != peer->pending.end()) {
      if (is_fenced(it->first)) {
        peer->pending_bytes -= it->second.size();
        it = peer->pending.erase(it);
        ++drops;
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : conns_) {
    if (conn->fd < 0) continue;
    // The head frame may be partially on the wire; a truncated frame
    // would poison the stream for every other peer on this connection,
    // so it ships whole — equivalent to a byte in flight at kill time.
    std::size_t i = conn->tx_off > 0 ? 1 : 0;
    while (i < conn->txq.size()) {
      if (is_fenced(conn->txq[i].first)) {
        conn->txq_bytes -= conn->txq[i].second.size();
        conn->txq.erase(conn->txq.begin() + static_cast<std::ptrdiff_t>(i));
        ++drops;
      } else {
        ++i;
      }
    }
  }
  if (drops > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    wire_.fenced_drops += drops;
  }
}

void SocketTransport::apply_chaos_reset() {
  std::uint64_t resets = 0;
  for (auto& conn : conns_) {
    if (conn->fd < 0 || conn->connecting) continue;
    // close_conn cuts the stream wherever it is — a partially written head
    // frame leaves the peer's decoder holding a truncated frame, which is
    // exactly the state the chaos tests want exercised.
    close_conn(*conn, true);
    ++resets;
  }
  if (resets > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    wire_.chaos_resets += resets;
  }
}

void SocketTransport::flush_delayed(std::chrono::steady_clock::time_point now) {
  while (!delayed_.empty() && delayed_.front().due <= now) {
    Delayed d = std::move(delayed_.front());
    delayed_.pop_front();
    deliver(d.from, d.to, std::move(d.payload));
  }
}

void SocketTransport::drain_ingress() {
  std::deque<Outgoing> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(ingress_);
  }
  for (auto& out : batch) route_frame(std::move(out));
}

void SocketTransport::route_frame(Outgoing&& out) {
  auto sit = static_routes_.find(out.to);
  if (sit != static_routes_.end()) {
    Peer& peer = *sit->second;
    if (peer.conn != nullptr && !peer.conn->connecting) {
      enqueue_frame(*peer.conn, out.to, std::move(out.frame));
      return;
    }
    if (peer.pending_bytes + out.frame.size() > config_.send_queue_bytes) {
      std::lock_guard<std::mutex> lock(mu_);
      ++wire_.overflow_drops;
      return;
    }
    peer.pending_bytes += out.frame.size();
    peer.pending.emplace_back(out.to, std::move(out.frame));
    ensure_dialing(peer);
    return;
  }
  auto lit = learned_routes_.find(out.to);
  if (lit != learned_routes_.end() && lit->second->fd >= 0) {
    enqueue_frame(*lit->second, out.to, std::move(out.frame));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++wire_.unroutable_drops;
}

void SocketTransport::enqueue_frame(Conn& conn, NodeId to, Bytes frame) {
  if (conn.txq_bytes + frame.size() > config_.send_queue_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++wire_.overflow_drops;
    return;
  }
  conn.txq_bytes += frame.size();
  conn.txq.emplace_back(to, std::move(frame));
  handle_writable(conn);
}

void SocketTransport::ensure_dialing(Peer& peer) {
  if (peer.conn != nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  if (peer.next_dial > now) return;

  bool in_progress = false;
  std::string err;
  const int fd = connect_socket(peer.ep, in_progress, err);
  if (fd < 0) {
    on_dial_failure(peer);
    return;
  }
  auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
  conn->fd = fd;
  conn->dialed = true;
  conn->connecting = in_progress;
  conn->peer = &peer;
  peer.conn = conn.get();
  Conn& ref = *conn;
  conns_.push_back(std::move(conn));
  if (!in_progress) conn_established(ref);
}

void SocketTransport::on_dial_failure(Peer& peer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wire_.connect_failures;
  }
  // Decorrelated jitter (D10): a fleet of clients redialling a recovering
  // peer spreads out instead of arriving in synchronized waves, and the
  // cap bounds how long a retry schedule can lag an actual recovery.
  peer.backoff =
      next_backoff(config_.backoff_min, config_.backoff_max, peer.backoff, backoff_rng_);
  peer.attempts += 1;
  peer.next_dial = std::chrono::steady_clock::now() + peer.backoff;
}

void SocketTransport::on_dial_result(Conn& conn, bool ok) {
  if (ok) {
    conn.connecting = false;
    conn_established(conn);
    return;
  }
  Peer* peer = conn.peer;
  close_conn(conn, false);  // nothing was ever written; pending stays queued
  if (peer != nullptr) on_dial_failure(*peer);
}

void SocketTransport::conn_established(Conn& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wire_.connects;
    if (conn.peer != nullptr && conn.peer->was_up) ++wire_.reconnects;
  }
  conn.txq_bytes += kHelloFrameBytes;
  conn.txq.emplace_front(NodeId{0}, encode_hello_frame(config_.incarnation));
  if (conn.peer != nullptr) {
    conn.peer->was_up = true;
    conn.peer->attempts = 0;
    conn.peer->backoff = std::chrono::milliseconds{0};
    while (!conn.peer->pending.empty()) {
      auto& [to, frame] = conn.peer->pending.front();
      conn.txq_bytes += frame.size();
      conn.txq.emplace_back(to, std::move(frame));
      conn.peer->pending.pop_front();
    }
    conn.peer->pending_bytes = 0;
  }
  handle_writable(conn);
}

void SocketTransport::handle_writable(Conn& conn) {
  if (conn.fd < 0) return;
  if (conn.connecting) {
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      on_dial_result(conn, false);
      return;
    }
    on_dial_result(conn, true);
    return;
  }
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t framing_out = 0;
  const std::size_t dribble = chaos_dribble_.load(std::memory_order_relaxed);
  std::size_t budget = dribble == 0 ? std::numeric_limits<std::size_t>::max() : dribble;
  while (!conn.txq.empty() && budget > 0) {
    const Bytes& frame = conn.txq.front().second;
    const std::size_t want = std::min(frame.size() - conn.tx_off, budget);
    const auto n = ::write(conn.fd, frame.data() + conn.tx_off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (bytes_out > 0) flush_write_stats(bytes_out, frames_out, framing_out);
      close_conn(conn, true);
      return;
    }
    bytes_out += static_cast<std::uint64_t>(n);
    conn.tx_off += static_cast<std::size_t>(n);
    budget -= static_cast<std::size_t>(n);
    if (conn.tx_off < frame.size()) break;
    ++frames_out;
    framing_out += frame.size() > 4 && frame[4] == kFrameHello ? frame.size()
                                                               : kDataFrameOverhead;
    conn.txq_bytes -= frame.size();
    conn.txq.pop_front();
    conn.tx_off = 0;
  }
  if (bytes_out > 0 || frames_out > 0) flush_write_stats(bytes_out, frames_out, framing_out);
}

void SocketTransport::flush_write_stats(std::uint64_t bytes, std::uint64_t frames,
                                        std::uint64_t framing) {
  std::lock_guard<std::mutex> lock(mu_);
  wire_.socket_bytes_out += bytes;
  wire_.frames_out += frames;
  wire_.framing_bytes_out += framing;
}

void SocketTransport::handle_readable(Conn& conn) {
  // Hybrid read strategy: a large outstanding payload span is read
  // straight into the frame's shared buffer (kernel → payload is the only
  // copy — the zero-copy receive path); header bytes and small frames go
  // through a scratch buffer so one syscall can cover many small frames.
  std::uint8_t scratch[4096];
  const auto sink = [this, &conn](Frame&& f) {
    if (conn.fd >= 0) on_frame(conn, std::move(f));
  };
  while (conn.fd >= 0) {
    auto [dst, room] = conn.decoder.next_span();
    if (room == 0) {  // poisoned decoder that somehow survived: close
      close_conn(conn, true);
      return;
    }
    const bool direct = room >= sizeof(scratch);
    const auto n =
        ::read(conn.fd, direct ? dst : scratch, direct ? room : sizeof(scratch));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(conn, true);
      return;
    }
    if (n == 0) {  // EOF — the peer process closed or died
      close_conn(conn, true);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      wire_.socket_bytes_in += static_cast<std::uint64_t>(n);
    }
    const bool ok =
        direct ? conn.decoder.commit(static_cast<std::size_t>(n), sink)
               : conn.decoder.feed(BytesView(scratch, static_cast<std::size_t>(n)), sink);
    if (!ok && conn.fd >= 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++wire_.framing_errors;
      }
      close_conn(conn, true);
      return;
    }
  }
}

void SocketTransport::on_frame(Conn& conn, Frame&& f) {
  if (f.kind == kFrameHello) {
    conn.hello_seen = true;
    conn.peer_incarnation = f.incarnation;
    if (conn.dialed && conn.peer != nullptr) {
      if (f.incarnation < conn.peer->max_incarnation) {
        // A zombie stream of a dead era (the peer restarted and we
        // already spoke to the new incarnation): nothing from it may be
        // delivered.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++wire_.stale_era_drops;
        }
        close_conn(conn, true);
        return;
      }
      conn.peer->max_incarnation = f.incarnation;
    }
    return;
  }
  // DATA. A peer speaking DATA before HELLO is not our protocol.
  if (!conn.hello_seen) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++wire_.framing_errors;
    }
    close_conn(conn, true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wire_.frames_in;
    if (fenced_.count(f.from) > 0 || fenced_.count(f.to) > 0) {
      ++wire_.fenced_drops;
      return;
    }
    // Inbound half of the chaos blackhole: the bytes crossed the wire,
    // but this side refuses to hear them (asymmetric partition).
    if (!chaos_blackhole_.empty() &&
        (chaos_blackhole_.count(f.from) > 0 || chaos_blackhole_.count(f.to) > 0)) {
      ++wire_.chaos_blackholed;
      return;
    }
  }
  // Learn the return route: replies to f.from ride this connection (the
  // server side never dials clients).
  learned_routes_[f.from] = &conn;
  const auto latency_ms = chaos_latency_ms_.load(std::memory_order_relaxed);
  if (latency_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++wire_.chaos_delayed;
    }
    delayed_.push_back(Delayed{std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(latency_ms),
                               f.from, f.to, std::move(f.payload)});
    return;
  }
  deliver(f.from, f.to, std::move(f.payload));
}

void SocketTransport::deliver(NodeId from, NodeId to,
                              std::shared_ptr<const Bytes> payload) {
  std::shared_ptr<LocalNode> box;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      ++wire_.unroutable_drops;
      return;
    }
    box = it->second;
  }
  exec_.post([box = std::move(box), from, payload = std::move(payload)] {
    std::lock_guard<std::mutex> node_lock(box->mu);
    if (box->node != nullptr) box->node->on_shared_message(from, payload);
  });
}

void SocketTransport::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; poll will retry
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++wire_.accepts;
    }
    auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
    conn->fd = fd;
    Conn& ref = *conn;
    conns_.push_back(std::move(conn));
    ref.txq_bytes += kHelloFrameBytes;
    ref.txq.emplace_back(NodeId{0}, encode_hello_frame(config_.incarnation));
    handle_writable(ref);
  }
}

void SocketTransport::close_conn(Conn& conn, bool count_down_drops) {
  if (conn.fd < 0) return;
  // A conn still mid-dial never carried traffic: its closure is a
  // connect_failure (counted by the caller), not a disconnect.
  const bool established = !conn.connecting;
  ::close(conn.fd);
  conn.fd = -1;
  conn.connecting = false;
  std::uint64_t dropped = 0;
  for (const auto& [to, frame] : conn.txq) {
    (void)to;
    if (frame.size() > 4 && frame[4] == kFrameData) ++dropped;
  }
  conn.txq.clear();
  conn.txq_bytes = 0;
  conn.tx_off = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_down_drops && dropped > 0) wire_.down_drops += dropped;
    if (established) ++wire_.disconnects;
  }
  if (conn.peer != nullptr) {
    conn.peer->conn = nullptr;
    if (!conn.peer->pending.empty()) {
      // Something is still waiting for this endpoint: retry with backoff.
      on_dial_failure(*conn.peer);
    }
  }
  for (auto it = learned_routes_.begin(); it != learned_routes_.end();) {
    if (it->second == &conn) {
      it = learned_routes_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace faust::sock
