#include "wire/encoder.h"

namespace faust::wire {

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::get_u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint32_t Reader::get_u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
  return v;
}

std::uint64_t Reader::get_u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
  return v;
}

Bytes Reader::get_bytes() {
  const std::uint32_t len = get_u32();
  return get_raw(len);
}

Bytes Reader::get_raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace faust::wire
