#include "wire/encoder.h"

namespace faust::wire {

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::get_u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint32_t Reader::get_u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
  return v;
}

std::uint64_t Reader::get_u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
  return v;
}

Bytes Reader::get_bytes() {
  const BytesView v = get_bytes_view();
  return Bytes(v.begin(), v.end());
}

Bytes Reader::get_raw(std::size_t n) {
  const BytesView v = get_view(n);
  return Bytes(v.begin(), v.end());
}

BytesView Reader::get_bytes_view() {
  const std::uint32_t len = get_u32();
  return get_view(len);
}

BytesView Reader::get_view(std::size_t n) {
  if (!need(n)) return {};  // error sentinel: data() == nullptr
  BytesView v = data_.subspan(pos_, n);
  if (v.data() == nullptr) {
    // Reader over an empty source buffer: subspan has no address to point
    // at, so substitute a static one — a successful read must never be
    // mistaken for the error sentinel.
    static constexpr std::uint8_t kPresentEmpty = 0;
    v = BytesView(&kPresentEmpty, 0);
  }
  pos_ += n;
  return v;
}

}  // namespace faust::wire
