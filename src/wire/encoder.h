// Canonical binary encoding.
//
// All protocol messages and all signature payloads are encoded through
// Writer/Reader (DESIGN.md, decision D3): fixed little-endian integers and
// length-prefixed byte strings.  The encoding of a value is unique, so
// signatures computed over encodings are unambiguous.
//
// Reader is hardened against malformed input: a Byzantine server may send
// arbitrary bytes, so every `get_*` bounds-checks and a failed read flips
// a sticky `ok()` flag instead of throwing or crashing.  Protocol code
// checks `ok()` once after decoding and routes failures into the paper's
// fail path.
//
// Two performance affordances (see PERF.md):
//  - Writer takes a capacity hint so that a message whose exact encoded
//    size is known up front (`size_hint` in ustor/messages.h) is encoded
//    with a single allocation.
//  - Reader::get_view / get_bytes_view return views INTO the source
//    buffer instead of copying.  A view is valid only while the buffer
//    passed to the Reader constructor is alive and unmodified; callers
//    that keep decoded data beyond that lifetime must copy.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace faust::wire {

/// Appends values to an owned byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Pre-allocates `capacity_hint` bytes so that encoding a message of a
  /// known size performs exactly one allocation.
  explicit Writer(std::size_t capacity_hint) { buf_.reserve(capacity_hint); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v) { append_u32(buf_, v); }
  void put_u64(std::uint64_t v) { append_u64(buf_, v); }

  /// Length-prefixed (u32) byte string.
  void put_bytes(BytesView b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    append(buf_, b);
  }

  /// Raw bytes, no length prefix (for fixed-size fields like hashes).
  void put_raw(BytesView b) { append(buf_, b); }

  /// Moves the accumulated buffer out.
  Bytes take() { return std::move(buf_); }

  const Bytes& buffer() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequentially decodes a byte buffer with sticky error state.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();

  /// Length-prefixed byte string, copied out. An owned byte string cannot
  /// carry a presence sentinel, so `{}` on error equals a legitimately
  /// empty string; callers needing the distinction without consulting
  /// ok() use get_bytes_view(), whose error sentinel is distinct.
  Bytes get_bytes();

  /// Exactly `n` raw bytes, copied out. Same empty-vs-error note as
  /// get_bytes(); get_view() carries the distinct sentinel.
  Bytes get_raw(std::size_t n);

  /// Length-prefixed byte string as a zero-copy view into the source
  /// buffer. A present-but-empty string decodes to a zero-length view
  /// with a NON-null data(); a decode error returns the distinct error
  /// sentinel (null data(), see is_error()). The view is valid only while
  /// the source buffer outlives it.
  BytesView get_bytes_view();

  /// Exactly `n` raw bytes as a zero-copy view into the source buffer.
  /// Same present-vs-error sentinel and lifetime contract as
  /// get_bytes_view().
  BytesView get_view(std::size_t n);

  /// True iff `v` is the error sentinel of get_view / get_bytes_view
  /// (failed reads return a view with null data(); successful reads never
  /// do, even for zero-length strings or an empty source buffer).
  static bool is_error(BytesView v) { return v.data() == nullptr; }

  /// Poisons the reader: all subsequent reads fail and ok() is false.
  /// Decoders use it to reject inputs that are well-formed at the byte
  /// level but violate canonicality (unknown enum value, out-of-order
  /// key, oversized count).
  void poison() { ok_ = false; }

  /// True iff no decode error occurred so far.
  bool ok() const { return ok_; }

  /// True iff every byte has been consumed (call together with ok() to
  /// reject trailing garbage).
  bool exhausted() const { return pos_ == data_.size(); }

  /// Bytes remaining.
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace faust::wire
