// Hash-based digital signatures: Lamport one-time signatures certified by
// a Merkle tree (the classic Merkle signature scheme, MSS).
//
// Unlike the default HMAC scheme (which relies on keeping MAC keys away
// from the server), these are *true* digital signatures built only on the
// collision resistance of SHA-256: verification needs nothing but the
// signer's public Merkle root, so even the untrusted server could verify
// them. They are stateful (each one-time key may sign exactly once) and
// bulky (~16.5 kB per signature) — the textbook trade-off, quantified in
// bench_crypto. Swapping them into USTOR/FAUST requires no protocol
// change whatsoever (DESIGN.md decision D4); crypto_test runs the full
// protocol over them.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/signature.h"

namespace faust::crypto {

/// Merkle signature scheme for n clients; each client can issue 2^height
/// signatures. All key material derives deterministically from
/// `master_seed` (clients would hold only their own chain in a real
/// deployment; co-locating them mirrors HmacSignatureScheme's testing
/// arrangement).
class MerkleSignatureScheme final : public SignatureScheme {
 public:
  MerkleSignatureScheme(int num_clients, BytesView master_seed, int height = 6);

  /// Signs with the next unused one-time key of `signer`. Aborts via
  /// FAUST_CHECK if the signer exhausted its 2^height keys.
  Bytes sign(ClientId signer, BytesView message) const override;

  bool verify(ClientId signer, BytesView message, BytesView signature) const override;

  std::size_t signature_size() const override;

  /// The signer's public key (Merkle root over its one-time keys).
  const Hash& public_key(ClientId signer) const;

  /// One-time keys left for `signer`.
  std::uint64_t signatures_remaining(ClientId signer) const;

  int height() const { return height_; }

 private:
  struct ClientKeys {
    // tree[0] = leaf hashes (2^h), tree[k] = level k, tree[h] = {root}.
    std::vector<std::vector<Hash>> tree;
    std::uint64_t next_leaf = 0;  // consumed by sign()
  };

  /// Secret value for (leaf, digest-bit position, bit value).
  Hash secret(ClientId signer, std::uint64_t leaf, int position, int bit) const;

  /// Leaf public key: H(concat of the 512 per-secret hashes).
  Hash leaf_hash(ClientId signer, std::uint64_t leaf) const;

  const int height_;
  const std::uint64_t capacity_;  // 2^height
  Bytes seed_;
  mutable std::vector<ClientKeys> keys_;  // sign() consumes leaves
};

}  // namespace faust::crypto
