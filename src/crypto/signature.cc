#include "crypto/signature.h"

#include "common/check.h"
#include "crypto/hmac.h"

namespace faust::crypto {

HmacSignatureScheme::HmacSignatureScheme(int num_clients, BytesView master_seed) {
  FAUST_CHECK(num_clients >= 1);
  keys_.reserve(static_cast<std::size_t>(num_clients));
  for (int i = 1; i <= num_clients; ++i) {
    // key_i = SHA-256("faust-client-key" || master_seed || i)
    Bytes material = to_bytes("faust-client-key");
    append(material, master_seed);
    append_u32(material, static_cast<std::uint32_t>(i));
    const Hash key = Sha256::digest(material);
    keys_.emplace_back(BytesView(key.data(), key.size()));
  }
}

const HmacKey& HmacSignatureScheme::key_for(ClientId signer) const {
  FAUST_CHECK(signer >= 1 && static_cast<std::size_t>(signer) <= keys_.size());
  return keys_[static_cast<std::size_t>(signer - 1)];
}

Bytes HmacSignatureScheme::sign(ClientId signer, BytesView message) const {
  return hash_to_bytes(key_for(signer).mac(message));
}

bool HmacSignatureScheme::verify(ClientId signer, BytesView message, BytesView signature) const {
  if (signer < 1 || static_cast<std::size_t>(signer) > keys_.size()) return false;
  const Hash expected = key_for(signer).mac(message);
  return constant_time_equal(BytesView(expected.data(), expected.size()), signature);
}

std::shared_ptr<SignatureScheme> make_hmac_scheme(int num_clients, std::uint64_t seed) {
  Bytes seed_bytes;
  append_u64(seed_bytes, seed);
  return std::make_shared<HmacSignatureScheme>(num_clients, seed_bytes);
}

}  // namespace faust::crypto
