// Memoization of successful signature verifications.
//
// The USTOR workload has extreme temporal locality: the same signed
// versions and proofs recur in reply after reply until they are replaced
// (cf. Martina et al., "A unified approach to the performance analysis of
// caching systems"). VerifyCache wraps any SignatureScheme and remembers
// which (signer, message, signature) triples have already verified, so a
// recurring triple costs one hash instead of a full MAC/signature check.
//
// Soundness: an entry is keyed by SHA-256 over the signer id, the SHA-256
// of the message, and the full signature bytes. Under collision
// resistance, a hit implies the exact same triple verified before —
// deterministic verification means the answer is still true. A tampered
// signature or payload produces a different key, misses, and goes through
// full verification; the cache can therefore never launder a forgery
// (regression-tested against the Byzantine tamper suite). Only positive
// results are stored: failures are rare (and fatal to the session), so
// caching them buys nothing and would grow the attack surface.
//
// Capacity is bounded; when full, the cache resets wholesale (epoch
// clear). That is O(1) amortized, keeps no LRU bookkeeping on the hot
// path, and a cold round simply re-verifies.
//
// Thread-compatibility: like SignatureScheme, instances are used from a
// single simulation thread.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"

namespace faust::crypto {

class VerifyCache final : public SignatureScheme {
 public:
  explicit VerifyCache(std::shared_ptr<const SignatureScheme> inner,
                       std::size_t max_entries = 4096);

  /// Delegates to the inner scheme, then primes the cache with the fresh
  /// (signer, message, signature) triple: our own signatures verify for
  /// free when a correct server echoes them back.
  Bytes sign(ClientId signer, BytesView message) const override;

  /// Cache hit: true without touching the inner scheme. Miss: full inner
  /// verification; successes are inserted.
  bool verify(ClientId signer, BytesView message, BytesView signature) const override;

  std::size_t signature_size() const override { return inner_->signature_size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t entries() const { return cache_.size(); }

 private:
  struct HashKeyHasher {
    std::size_t operator()(const Hash& h) const {
      // The key is itself a SHA-256 output: any 8 bytes are uniform.
      std::size_t v;
      static_assert(sizeof(v) <= sizeof(Hash));
      __builtin_memcpy(&v, h.data(), sizeof(v));
      return v;
    }
  };

  static Hash key_of(ClientId signer, BytesView message, BytesView signature);

  const std::shared_ptr<const SignatureScheme> inner_;
  const std::size_t max_entries_;
  mutable std::unordered_set<Hash, HashKeyHasher> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace faust::crypto
