// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the collision-resistant hash function H assumed in §2 of the
// paper. It backs register-value hashes, the digest chains D(ω1..ωm) of
// §5, and the HMAC-based signature scheme.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace faust::crypto {

/// A 32-byte SHA-256 output.
using Hash = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.update(a); h.update(b); Hash d = h.finish();
/// `finish()` may be called exactly once.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the hash state.
  void update(BytesView data);

  /// Completes padding and returns the digest. The context must not be
  /// used afterwards.
  Hash finish();

  /// One-shot convenience: SHA-256(data).
  static Hash digest(BytesView data);

 private:
  void compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;        // bytes absorbed so far
  std::uint8_t buffer_[64];            // partial block
  std::size_t buffer_len_ = 0;
};

/// Converts a Hash to Bytes (for wire encoding / concatenation).
Bytes hash_to_bytes(const Hash& h);

}  // namespace faust::crypto
