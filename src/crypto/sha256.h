// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the collision-resistant hash function H assumed in §2 of the
// paper. It backs register-value hashes, the digest chains D(ω1..ωm) of
// §5, and the HMAC-based signature scheme.
//
// The compression function is dispatched at runtime: on x86-64 CPUs with
// the SHA extensions the hardware path (sha256_ni.cc) is used, otherwise
// the portable scalar path. Both produce identical output.
//
// A context can be snapshotted at a block boundary (`midstate`) and
// resumed later; HMAC uses this to precompute its key pads once per key
// instead of re-absorbing them on every MAC (see crypto/hmac.h).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace faust::crypto {

/// A 32-byte SHA-256 output.
using Hash = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.update(a); h.update(b); Hash d = h.finish();
/// `finish()` may be called exactly once.
class Sha256 {
 public:
  /// Compression state captured at a 64-byte block boundary. Lets a hash
  /// resume from a precomputed prefix.
  struct Midstate {
    std::uint32_t state[8];
    std::uint64_t bytes = 0;  // bytes absorbed; always a multiple of 64
  };

  Sha256();

  /// Resumes from a midstate (as if the prefix had just been absorbed).
  explicit Sha256(const Midstate& m);

  /// Captures the current state. Only valid at a block boundary, i.e.
  /// after absorbing a multiple of 64 bytes.
  Midstate midstate() const;

  /// Absorbs `data` into the hash state.
  void update(BytesView data);

  /// Completes padding and returns the digest. The context must not be
  /// used afterwards.
  Hash finish();

  /// One-shot convenience: SHA-256(data).
  static Hash digest(BytesView data);

 private:
  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;        // bytes absorbed so far
  std::uint8_t buffer_[64];            // partial block
  std::size_t buffer_len_ = 0;
};

/// Converts a Hash to Bytes (for wire encoding / concatenation).
Bytes hash_to_bytes(const Hash& h);

}  // namespace faust::crypto
