// Client signatures (the sign_i / verify_i primitives of §2).
//
// The paper assumes digital signatures: only C_i can produce a signature
// that verify_i accepts, and every party can verify.  We substitute
// HMAC-SHA256 with per-client keys held in a keystore that is distributed
// to CLIENTS ONLY (see DESIGN.md §2): in this protocol the untrusted
// server never verifies a signature, so withholding the MAC keys from the
// server preserves the adversary model exactly — the server cannot forge
// any client's signature.  The `SignatureScheme` interface admits a real
// asymmetric scheme without touching protocol code; `NullSignatureScheme`
// exists to measure the cost of cryptography (bench C6).
#pragma once

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace faust::crypto {

/// Abstract signing/verification facility shared by the n clients.
///
/// Thread-compatibility: instances are used from a single simulation
/// thread; implementations need not be thread-safe.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Produces signer's signature over `message`.
  virtual Bytes sign(ClientId signer, BytesView message) const = 0;

  /// Checks that `signature` is `signer`'s signature over `message`.
  virtual bool verify(ClientId signer, BytesView message, BytesView signature) const = 0;

  /// Size in bytes of a signature (fixed per scheme; used by the wire
  /// format and the overhead bench).
  virtual std::size_t signature_size() const = 0;
};

/// HMAC-SHA256 "signatures" with one key per client, all derived from a
/// master seed. Holds the keys of all n clients; hand an instance to each
/// client but never to the server. Keys are stored as precomputed HmacKey
/// pad midstates, so each sign/verify skips the two key-pad compressions.
class HmacSignatureScheme final : public SignatureScheme {
 public:
  /// Derives n client keys from `master_seed` (domain-separated SHA-256).
  HmacSignatureScheme(int num_clients, BytesView master_seed);

  Bytes sign(ClientId signer, BytesView message) const override;
  bool verify(ClientId signer, BytesView message, BytesView signature) const override;
  std::size_t signature_size() const override { return 32; }

 private:
  const HmacKey& key_for(ClientId signer) const;

  std::vector<HmacKey> keys_;  // keys_[i-1] belongs to client i
};

/// No-op scheme: empty signatures, verification always succeeds. ONLY for
/// the crypto-cost ablation bench; offers zero protection.
class NullSignatureScheme final : public SignatureScheme {
 public:
  Bytes sign(ClientId, BytesView) const override { return {}; }
  bool verify(ClientId, BytesView, BytesView) const override { return true; }
  std::size_t signature_size() const override { return 0; }
};

/// Convenience factory: HMAC scheme for `num_clients` clients seeded from a
/// fixed test seed.
std::shared_ptr<SignatureScheme> make_hmac_scheme(int num_clients, std::uint64_t seed = 0x5eed);

}  // namespace faust::crypto
