// Internal: SHA-256 compression backends. sha256.cc dispatches between
// them once at startup; both consume whole 64-byte blocks in batches.
#pragma once

#include <cstddef>
#include <cstdint>

namespace faust::crypto::detail {

/// True iff this binary AND this CPU support the x86 SHA extensions.
bool sha_ni_available();

/// Hardware compression (x86 SHA-NI). Only callable if sha_ni_available().
void compress_sha_ni(std::uint32_t state[8], const std::uint8_t* blocks, std::size_t nblocks);

/// Portable scalar compression.
void compress_portable(std::uint32_t state[8], const std::uint8_t* blocks, std::size_t nblocks);

}  // namespace faust::crypto::detail
