// ChunkedHasher — an incrementally maintainable hash of a byte buffer.
//
// The flat SHA-256 of a register value costs O(|value|) on every change.
// For the KV layer's partition encodings the change set per operation is
// one entry, so this class hashes the buffer as a fixed-fanout hash tree
// over kChunkSize-byte chunks: after a localized edit only the touched
// chunks and their root paths are rehashed — O(chunk + log) instead of
// O(|value|) (PERF.md "O(change) operations").
//
// The root is a collision-resistant commitment to the exact byte string:
//   leaf_i  = H(0x00 ‖ chunk_i)                 (chunks of kChunkSize bytes)
//   node    = H(0x01 ‖ child hashes)            (up to kFanout children)
//   root    = H(0x02 ‖ le64(total_len) ‖ top)
// Domain separation (0x00/0x01/0x02) rules out leaf/node confusion and
// the length binding pins the chunk boundaries, so two distinct buffers
// cannot share a root without a SHA-256 collision. A forged chunk
// presented with a stale sibling path therefore cannot reproduce the
// signed root — the Byzantine regression tests pin this.
//
// Both the signer and every verifier of a DATA payload must agree on the
// scheme; ustor::DigestMode selects it deployment-wide (ustor/types.h).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace faust::crypto {

class ChunkedHasher {
 public:
  static constexpr std::size_t kChunkSize = 1024;
  static constexpr std::size_t kFanout = 16;

  /// A half-open byte range [begin, end) of the (new) buffer.
  using ByteRange = std::pair<std::size_t, std::size_t>;

  /// One-shot root over `data` (what a verifier without prior state pays).
  static Hash digest(BytesView data);

  /// Builds the full tree over `data` (O(|data|) hashing).
  void reset(BytesView data);

  /// True once reset() or update() ran; root() is then valid.
  bool initialized() const { return init_; }

  /// Size of the buffer the current root commits to.
  std::uint64_t size() const { return size_; }

  const Hash& root() const { return root_; }

  /// Re-derives the root after an edit. Contract: every byte of `data`
  /// NOT covered by a range in `dirty` is unchanged from the previous
  /// buffer AND sits at the same offset. A change that shifted the tail
  /// (insert/erase) must therefore pass a range extending to
  /// `data.size()`; pure tail growth/truncation is detected from the size
  /// change and needs no explicit range. Cost: O(dirty bytes + tree path).
  void update(BytesView data, const std::vector<ByteRange>& dirty);
  void update(BytesView data, ByteRange dirty) { update(data, std::vector<ByteRange>{dirty}); }

  /// Diffs `new_data` against `old_data` (which MUST be the buffer the
  /// current tree was built over) and updates over the changed span.
  /// Verifiers use this: comparing bytes is far cheaper than hashing
  /// them, so an unchanged prefix/suffix costs a memcmp, not a SHA-256.
  void update_diff(BytesView old_data, BytesView new_data);

  /// Diagnostics: leaf chunks hashed so far (the O(change) claim in
  /// numbers — tests and benches read it).
  std::uint64_t chunks_hashed() const { return chunks_hashed_; }

 private:
  static Hash leaf_hash(BytesView chunk);

  static std::size_t leaf_count(std::size_t bytes) {
    return bytes == 0 ? 1 : (bytes + kChunkSize - 1) / kChunkSize;
  }

  /// Recomputes the dirty leaves and every ancestor level, then the root.
  void rebuild(BytesView data, std::vector<ByteRange> leaf_dirty);

  std::vector<std::vector<Hash>> levels_;  // [0] = leaves; shrinks to 1 node
  Hash root_{};
  std::uint64_t size_ = 0;
  bool init_ = false;
  std::uint64_t chunks_hashed_ = 0;
};

}  // namespace faust::crypto
