#include "crypto/chunked_hasher.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace faust::crypto {
namespace {

/// Merges overlapping/adjacent ranges in place (inputs need not be sorted).
void normalize(std::vector<ChunkedHasher::ByteRange>& ranges) {
  std::sort(ranges.begin(), ranges.end());
  std::size_t out = 0;
  for (const auto& r : ranges) {
    if (r.second <= r.first) continue;  // empty
    if (out > 0 && r.first <= ranges[out - 1].second) {
      ranges[out - 1].second = std::max(ranges[out - 1].second, r.second);
    } else {
      ranges[out++] = r;
    }
  }
  ranges.resize(out);
}

}  // namespace

Hash ChunkedHasher::leaf_hash(BytesView chunk) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(BytesView(&tag, 1));
  h.update(chunk);
  return h.finish();
}

Hash ChunkedHasher::digest(BytesView data) {
  ChunkedHasher t;
  t.reset(data);
  return t.root();
}

void ChunkedHasher::reset(BytesView data) {
  levels_.clear();
  size_ = data.size();
  init_ = true;
  const std::size_t leaves = leaf_count(data.size());
  rebuild(data, {ByteRange{0, std::max<std::size_t>(data.size(), 1)}});
  FAUST_CHECK(levels_[0].size() == leaves);
}

void ChunkedHasher::update(BytesView data, const std::vector<ByteRange>& dirty) {
  FAUST_CHECK(init_);
  std::vector<ByteRange> leaf_dirty = dirty;
  if (data.size() != size_) {
    // The tail moved (or the last chunk's boundary did): the leaf holding
    // the last byte the buffers can still share, and everything after it,
    // is suspect. Explicit ranges must already reach data.size()
    // (contract); this also covers pure tail growth/truncation.
    const std::size_t common = std::min<std::size_t>(size_, data.size());
    leaf_dirty.push_back(ByteRange{common > 0 ? common - 1 : 0,
                                   std::max<std::size_t>(data.size(), 1)});
  }
  size_ = data.size();
  rebuild(data, std::move(leaf_dirty));
}

void ChunkedHasher::update_diff(BytesView old_data, BytesView new_data) {
  FAUST_CHECK(init_);
  FAUST_CHECK(old_data.size() == size_);
  const std::size_t common = std::min(old_data.size(), new_data.size());

  // Block-wise prefix scan: memcmp is an order of magnitude cheaper per
  // byte than SHA-256, which is the whole point of diff-verification.
  constexpr std::size_t kBlock = 512;
  std::size_t a = 0;
  while (a < common) {
    const std::size_t len = std::min(kBlock, common - a);
    if (std::memcmp(old_data.data() + a, new_data.data() + a, len) != 0) {
      while (a < common && old_data[a] == new_data[a]) ++a;
      break;
    }
    a += len;
  }

  if (old_data.size() != new_data.size()) {
    // Shifted tail: everything from the first difference onward is dirty.
    update(new_data, ByteRange{std::min(a, new_data.size()), new_data.size()});
    return;
  }
  if (a == common) return;  // identical buffers: the tree is already right

  std::size_t b = common;  // one past the last differing byte
  while (b > a) {
    const std::size_t len = std::min(kBlock, b - a);
    if (std::memcmp(old_data.data() + b - len, new_data.data() + b - len, len) != 0) {
      while (b > a && old_data[b - 1] == new_data[b - 1]) --b;
      break;
    }
    b -= len;
  }
  update(new_data, ByteRange{a, b});
}

void ChunkedHasher::rebuild(BytesView data, std::vector<ByteRange> byte_dirty) {
  const std::size_t leaves = leaf_count(data.size());

  // Byte ranges -> leaf index ranges (clipped to the new leaf count).
  std::vector<ByteRange> dirty;
  dirty.reserve(byte_dirty.size());
  for (const auto& [begin, end] : byte_dirty) {
    if (end <= begin) continue;
    const std::size_t lo = std::min(begin / kChunkSize, leaves);
    const std::size_t hi = std::min((end + kChunkSize - 1) / kChunkSize, leaves);
    if (hi > lo) dirty.push_back(ByteRange{lo, hi});
  }
  if (levels_.empty()) levels_.emplace_back();
  std::size_t old_count = levels_[0].size();
  if (old_count != leaves) {
    // Added/removed leaves are dirty by definition.
    const std::size_t from = std::min(old_count, leaves);
    if (leaves > from) dirty.push_back(ByteRange{from, leaves});
    levels_[0].resize(leaves);
  }
  normalize(dirty);

  for (const auto& [lo, hi] : dirty) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t off = i * kChunkSize;
      const std::size_t len = std::min(kChunkSize, data.size() - std::min(off, data.size()));
      levels_[0][i] = leaf_hash(data.subspan(off, len));
      ++chunks_hashed_;
    }
  }

  // Propagate level by level until a single node remains.
  std::size_t level = 0;
  while (levels_[level].size() > 1 || levels_.size() > level + 1) {
    const std::size_t child_count = levels_[level].size();
    if (child_count == 1) {
      // The tree shrank: drop now-superfluous upper levels.
      levels_.resize(level + 1);
      break;
    }
    const std::size_t parent_count = (child_count + kFanout - 1) / kFanout;
    if (levels_.size() == level + 1) levels_.emplace_back();
    std::vector<Hash>& parents = levels_[level + 1];
    const std::size_t old_parents = parents.size();

    std::vector<ByteRange> parent_dirty;
    parent_dirty.reserve(dirty.size() + 1);
    for (const auto& [lo, hi] : dirty) {
      parent_dirty.push_back(ByteRange{lo / kFanout, (hi + kFanout - 1) / kFanout});
    }
    if (old_parents != parent_count || old_count != child_count) {
      // The last parent's child set may have changed shape.
      const std::size_t from =
          std::min(old_count, child_count) / kFanout;
      if (parent_count > from) parent_dirty.push_back(ByteRange{from, parent_count});
      parents.resize(parent_count);
    }
    normalize(parent_dirty);

    for (const auto& [lo, hi] : parent_dirty) {
      for (std::size_t p = lo; p < hi; ++p) {
        const std::size_t first = p * kFanout;
        const std::size_t count = std::min(kFanout, child_count - first);
        Sha256 h;
        const std::uint8_t tag = 0x01;
        h.update(BytesView(&tag, 1));
        h.update(BytesView(levels_[level][first].data(), count * sizeof(Hash)));
        parents[p] = h.finish();
      }
    }

    dirty = std::move(parent_dirty);
    old_count = old_parents;
    ++level;
  }

  Sha256 h;
  const std::uint8_t tag = 0x02;
  h.update(BytesView(&tag, 1));
  Bytes len;
  append_u64(len, size_);
  h.update(len);
  h.update(BytesView(levels_.back()[0].data(), sizeof(Hash)));
  root_ = h.finish();
}

}  // namespace faust::crypto
