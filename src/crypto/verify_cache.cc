#include "crypto/verify_cache.h"

#include "common/check.h"

namespace faust::crypto {

VerifyCache::VerifyCache(std::shared_ptr<const SignatureScheme> inner, std::size_t max_entries)
    : inner_(std::move(inner)), max_entries_(max_entries) {
  FAUST_CHECK(inner_ != nullptr);
  FAUST_CHECK(max_entries_ >= 1);
}

Hash VerifyCache::key_of(ClientId signer, BytesView message, BytesView signature) {
  // VERIFY ‖ signer ‖ H(message) ‖ signature — hashing the message first
  // keeps the key computation O(|message|) with a fixed-size tail, and
  // domain-separates the key from every protocol payload.
  const Hash mh = Sha256::digest(message);
  std::uint8_t head[10] = {'V', 'E', 'R', 'I', 'F', 'Y'};
  for (int i = 0; i < 4; ++i) {
    head[6 + i] = static_cast<std::uint8_t>(static_cast<std::uint32_t>(signer) >> (8 * i));
  }
  Sha256 h;
  h.update(BytesView(head, sizeof(head)));
  h.update(BytesView(mh.data(), mh.size()));
  h.update(signature);
  return h.finish();
}

Bytes VerifyCache::sign(ClientId signer, BytesView message) const {
  Bytes sig = inner_->sign(signer, message);
  if (inner_->signature_size() == 0) return sig;  // see verify()
  if (cache_.size() >= max_entries_) cache_.clear();
  cache_.insert(key_of(signer, message, sig));
  return sig;
}

bool VerifyCache::verify(ClientId signer, BytesView message, BytesView signature) const {
  // A scheme with empty signatures (NullSignatureScheme, the crypto-cost
  // ablation) verifies for free; keying the cache would only add work.
  if (inner_->signature_size() == 0) return inner_->verify(signer, message, signature);
  const Hash key = key_of(signer, message, signature);
  if (cache_.contains(key)) {
    ++hits_;
    return true;
  }
  ++misses_;
  if (!inner_->verify(signer, message, signature)) return false;
  if (cache_.size() >= max_entries_) cache_.clear();
  cache_.insert(key);
  return true;
}

}  // namespace faust::crypto
