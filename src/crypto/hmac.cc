#include "crypto/hmac.h"

#include <cstring>

namespace faust::crypto {

HmacKey::HmacKey(BytesView key) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k[kBlock] = {0};
  if (key.size() > kBlock) {
    const Hash kh = Sha256::digest(key);
    std::memcpy(k, kh.data(), kh.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t pad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
  Sha256 inner;
  inner.update(BytesView(pad, kBlock));
  inner_ = inner.midstate();

  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  Sha256 outer;
  outer.update(BytesView(pad, kBlock));
  outer_ = outer.midstate();
}

Hash HmacKey::mac(BytesView data) const {
  Sha256 inner(inner_);
  inner.update(data);
  const Hash inner_digest = inner.finish();

  Sha256 outer(outer_);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Hash hmac_sha256(BytesView key, BytesView data) { return HmacKey(key).mac(data); }

}  // namespace faust::crypto
