// HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on our SHA-256.
#pragma once

#include "crypto/sha256.h"

namespace faust::crypto {

/// A key prepared for repeated MACs: the inner (K ⊕ ipad) and outer
/// (K ⊕ opad) pad blocks are absorbed once at construction and captured
/// as SHA-256 midstates, so each mac() costs two fewer compressions than
/// a from-scratch HMAC — for the short messages this protocol signs,
/// that halves the work.
class HmacKey {
 public:
  /// Keys of any length are accepted; keys longer than the block size are
  /// hashed first, per the standard.
  explicit HmacKey(BytesView key);

  /// HMAC-SHA256(key, data).
  Hash mac(BytesView data) const;

 private:
  Sha256::Midstate inner_;  // state after absorbing K ⊕ ipad
  Sha256::Midstate outer_;  // state after absorbing K ⊕ opad
};

/// One-shot HMAC-SHA256(key, data). Prefer HmacKey for repeated use of
/// the same key.
Hash hmac_sha256(BytesView key, BytesView data);

}  // namespace faust::crypto
