// HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on our SHA-256.
#pragma once

#include "crypto/sha256.h"

namespace faust::crypto {

/// Computes HMAC-SHA256(key, data). Keys of any length are accepted; keys
/// longer than the block size are hashed first, per the standard.
Hash hmac_sha256(BytesView key, BytesView data);

}  // namespace faust::crypto
