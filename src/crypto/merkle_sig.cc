#include "crypto/merkle_sig.h"

#include "common/check.h"
#include "wire/encoder.h"

namespace faust::crypto {
namespace {

constexpr int kDigestBits = 256;

/// Extracts bit `i` (0 = MSB of byte 0) of a 32-byte digest.
int digest_bit(const Hash& d, int i) {
  return (d[static_cast<std::size_t>(i / 8)] >> (7 - i % 8)) & 1;
}

Hash hash_pair(const Hash& left, const Hash& right) {
  Sha256 h;
  h.update(BytesView(left.data(), left.size()));
  h.update(BytesView(right.data(), right.size()));
  return h.finish();
}

}  // namespace

MerkleSignatureScheme::MerkleSignatureScheme(int num_clients, BytesView master_seed,
                                             int height)
    : height_(height), capacity_(1ULL << height), seed_(master_seed.begin(), master_seed.end()) {
  FAUST_CHECK(num_clients >= 1);
  FAUST_CHECK(height >= 1 && height <= 20);
  keys_.resize(static_cast<std::size_t>(num_clients));
  for (ClientId c = 1; c <= num_clients; ++c) {
    ClientKeys& ck = keys_[static_cast<std::size_t>(c - 1)];
    ck.tree.resize(static_cast<std::size_t>(height_) + 1);
    auto& leaves = ck.tree[0];
    leaves.reserve(capacity_);
    for (std::uint64_t leaf = 0; leaf < capacity_; ++leaf) {
      leaves.push_back(leaf_hash(c, leaf));
    }
    for (int level = 1; level <= height_; ++level) {
      const auto& below = ck.tree[static_cast<std::size_t>(level - 1)];
      auto& here = ck.tree[static_cast<std::size_t>(level)];
      here.reserve(below.size() / 2);
      for (std::size_t k = 0; k + 1 < below.size(); k += 2) {
        here.push_back(hash_pair(below[k], below[k + 1]));
      }
    }
  }
}

Hash MerkleSignatureScheme::secret(ClientId signer, std::uint64_t leaf, int position,
                                   int bit) const {
  Bytes material = to_bytes("faust-mss-secret");
  append(material, seed_);
  append_u32(material, static_cast<std::uint32_t>(signer));
  append_u64(material, leaf);
  append_u32(material, static_cast<std::uint32_t>(position));
  append_byte(material, static_cast<std::uint8_t>(bit));
  return Sha256::digest(material);
}

Hash MerkleSignatureScheme::leaf_hash(ClientId signer, std::uint64_t leaf) const {
  Sha256 h;
  for (int i = 0; i < kDigestBits; ++i) {
    for (int b = 0; b < 2; ++b) {
      const Hash sk = secret(signer, leaf, i, b);
      const Hash pk = Sha256::digest(BytesView(sk.data(), sk.size()));
      h.update(BytesView(pk.data(), pk.size()));
    }
  }
  return h.finish();
}

std::size_t MerkleSignatureScheme::signature_size() const {
  // leaf index + 256 revealed secrets + 256 complement hashes + auth path.
  return 8 + 2 * kDigestBits * 32 + static_cast<std::size_t>(height_) * 32;
}

Bytes MerkleSignatureScheme::sign(ClientId signer, BytesView message) const {
  FAUST_CHECK(signer >= 1 && static_cast<std::size_t>(signer) <= keys_.size());
  ClientKeys& ck = keys_[static_cast<std::size_t>(signer - 1)];
  FAUST_CHECK(ck.next_leaf < capacity_);  // one-time keys exhausted: misuse
  const std::uint64_t leaf = ck.next_leaf++;

  const Hash digest = Sha256::digest(message);
  wire::Writer w;
  w.put_u64(leaf);
  for (int i = 0; i < kDigestBits; ++i) {
    const int bit = digest_bit(digest, i);
    // Revealed secret for the digest bit, hash of the complement secret.
    const Hash revealed = secret(signer, leaf, i, bit);
    const Hash complement_sk = secret(signer, leaf, i, 1 - bit);
    const Hash complement_pk = Sha256::digest(BytesView(complement_sk.data(), complement_sk.size()));
    w.put_raw(BytesView(revealed.data(), revealed.size()));
    w.put_raw(BytesView(complement_pk.data(), complement_pk.size()));
  }
  // Authentication path: sibling at every level.
  std::uint64_t index = leaf;
  for (int level = 0; level < height_; ++level) {
    const std::uint64_t sibling = index ^ 1;
    const Hash& s = ck.tree[static_cast<std::size_t>(level)][sibling];
    w.put_raw(BytesView(s.data(), s.size()));
    index >>= 1;
  }
  return w.take();
}

bool MerkleSignatureScheme::verify(ClientId signer, BytesView message,
                                   BytesView signature) const {
  if (signer < 1 || static_cast<std::size_t>(signer) > keys_.size()) return false;
  if (signature.size() != signature_size()) return false;

  wire::Reader r(signature);
  const std::uint64_t leaf = r.get_u64();
  if (leaf >= capacity_) return false;

  const Hash digest = Sha256::digest(message);
  // Rebuild the leaf public key from revealed secrets + complement hashes.
  Sha256 leaf_h;
  for (int i = 0; i < kDigestBits; ++i) {
    const Bytes revealed = r.get_raw(32);
    const Bytes complement_pk = r.get_raw(32);
    if (!r.ok()) return false;
    const Hash revealed_pk = Sha256::digest(revealed);
    const int bit = digest_bit(digest, i);
    // Order in the leaf preimage is always (bit 0 value, bit 1 value).
    if (bit == 0) {
      leaf_h.update(BytesView(revealed_pk.data(), revealed_pk.size()));
      leaf_h.update(complement_pk);
    } else {
      leaf_h.update(complement_pk);
      leaf_h.update(BytesView(revealed_pk.data(), revealed_pk.size()));
    }
  }
  Hash node = leaf_h.finish();

  // Climb the authentication path to the root.
  std::uint64_t index = leaf;
  for (int level = 0; level < height_; ++level) {
    const Bytes sibling_raw = r.get_raw(32);
    if (!r.ok()) return false;
    Hash sibling;
    std::copy(sibling_raw.begin(), sibling_raw.end(), sibling.begin());
    node = (index & 1) == 0 ? hash_pair(node, sibling) : hash_pair(sibling, node);
    index >>= 1;
  }
  if (!r.exhausted()) return false;
  return node == public_key(signer);
}

const Hash& MerkleSignatureScheme::public_key(ClientId signer) const {
  FAUST_CHECK(signer >= 1 && static_cast<std::size_t>(signer) <= keys_.size());
  return keys_[static_cast<std::size_t>(signer - 1)].tree[static_cast<std::size_t>(height_)][0];
}

std::uint64_t MerkleSignatureScheme::signatures_remaining(ClientId signer) const {
  FAUST_CHECK(signer >= 1 && static_cast<std::size_t>(signer) <= keys_.size());
  return capacity_ - keys_[static_cast<std::size_t>(signer - 1)].next_leaf;
}

}  // namespace faust::crypto
