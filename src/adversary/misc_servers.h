// Additional faulty-server behaviours used by tests and benches.
#pragma once

#include "net/transport.h"
#include "ustor/server.h"

namespace faust::adversary {

/// A server that silently discards all COMMIT messages (SVER and P never
/// advance, L grows without bound).  The *committing client itself*
/// detects this on its next operation: the reply's version cannot extend
/// its own (line 36 of Algorithm 1).  Demonstrates that commit omission
/// is not a viable attack.
class CommitDroppingServer : public net::Node {
 public:
  CommitDroppingServer(int n, net::Transport& net, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }

 private:
  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
};

/// A server that serves the first `serve_ops` SUBMITs correctly and then
/// goes silent forever (crash fault).  Outstanding and future operations
/// never complete — the paper's point that liveness cannot be forced on a
/// faulty server — but no client may ever emit fail_i because of it
/// (failure-detection accuracy), and FAUST's offline exchange must keep
/// stability flowing for the operations that did complete.
class SilencingServer : public net::Node {
 public:
  SilencingServer(int n, net::Transport& net, std::uint64_t serve_ops,
                  NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }
  bool silenced() const { return served_ >= serve_ops_; }

 private:
  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  const std::uint64_t serve_ops_;
  std::uint64_t served_ = 0;
};

}  // namespace faust::adversary
