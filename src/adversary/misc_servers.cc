#include "adversary/misc_servers.h"

namespace faust::adversary {

CommitDroppingServer::CommitDroppingServer(int n, net::Transport& net, NodeId self)
    : core_(n), net_(net), self_(self) {
  net_.attach(self_, *this);
}

void CommitDroppingServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  if (*type == ustor::MsgType::kSubmitDelta) {
    const auto dm = ustor::decode_submit_delta_view(msg);
    if (!dm.has_value()) return;
    const auto m = ustor::expand_submit_delta(core_, *dm);
    if (!m.has_value()) return;
    const ustor::ReplySnapshot reply = core_.process_submit(*m);
    net_.send(self_, from, ustor::encode(reply));
    return;
  }
  if (*type != ustor::MsgType::kSubmit) return;  // drop COMMITs
  auto m = ustor::decode_submit(msg);
  if (!m.has_value()) return;
  const ustor::ReplySnapshot reply = core_.process_submit(*m);
  net_.send(self_, from, ustor::encode(reply));
}

SilencingServer::SilencingServer(int n, net::Transport& net, std::uint64_t serve_ops, NodeId self)
    : core_(n), net_(net), self_(self), serve_ops_(serve_ops) {
  net_.attach(self_, *this);
}

void SilencingServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  switch (*type) {
    case ustor::MsgType::kSubmit: {
      if (silenced()) return;  // crash: no reply, ever
      auto m = ustor::decode_submit(msg);
      if (!m.has_value()) return;
      ++served_;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      if (silenced()) return;
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value()) return;
      const auto m = ustor::expand_submit_delta(core_, *dm);
      if (!m.has_value()) return;
      ++served_;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kCommit: {
      if (silenced()) return;
      auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::adversary
