// Byzantine cache node behaviours (DESIGN.md D8 threat model).
//
// The cache tier is UNTRUSTED: it holds no keys and clients re-verify
// everything it serves against the writer's DATA signature. These
// subclasses exercise every lie a cache can tell through the honest
// node's adversary seams; the client-side outcome each must produce is
// pinned by tests/cache_byzantine_test.cc:
//
//   * corrupted values / forged digests / forged signatures → the client
//     REJECTS the section and falls back to the home shard (never a
//     wrong value, and never a condemned shard — the cache is not a
//     protocol party, so no fail_i);
//   * bogus negatives ("X_j was never written") → rejected whenever the
//     client's own verified knowledge refutes them (registers never
//     revert to ⊥);
//   * fake "unchanged" claims → rejected unless the writer's signature
//     binds the claimed timestamp to the exact digest the client
//     advertised — which a cache without the value cannot fake;
//   * stale-beyond-TTL serving → at worst stale-but-AUTHENTIC data,
//     surfaced through the as_of freshness horizon (and never eligible
//     for stability claims);
//   * frozen fills → the cache just degrades to a miss machine.
#pragma once

#include <cstdint>

#include "cache/cache_node.h"

namespace faust::adversary {

/// A CacheNode that misbehaves in one configured way.
class EvilCacheNode : public cache::CacheNode {
 public:
  enum class Mode : std::uint8_t {
    kHonest = 0,
    /// Flips a byte of every served value (digest recompute fails).
    kTamperValue,
    /// Flips a byte of every served digest (signature check fails).
    kForgeDigest,
    /// Flips a byte of every served DATA signature.
    kForgeSig,
    /// Claims every register unwritten, whatever is cached.
    kBogusNegative,
    /// Serves full hits as valueless "unchanged" tokens.
    kFakeUnchanged,
    /// Never expires entries: serves arbitrarily stale (authentic) data.
    kStaleBeyondTtl,
    /// Silently drops every CACHE_FILL (cache degrades to a miss machine).
    kFreezeFills,
  };

  EvilCacheNode(NodeId self, net::Transport& net, exec::Executor& exec, int n,
                cache::CacheOptions opts, Mode mode)
      : cache::CacheNode(self, net, exec, n, opts), mode_(mode) {}

  Mode mode() const { return mode_; }

  /// Sections this node actively distorted (not counting TTL/fill modes).
  std::uint64_t corruptions() const { return corruptions_; }

 protected:
  void corrupt_reply(NodeId to, std::vector<cache::OutSection>& sections) override;
  bool entry_expired(const Entry& e) const override;
  bool accept_fills() const override;

 private:
  const Mode mode_;
  std::uint64_t corruptions_ = 0;
};

}  // namespace faust::adversary
