// Byzantine servers that mount forking attacks (§1, §4).
//
// A forking server is "the correct server, run several times": it keeps
// one `ustor::ServerCore` per fork and serves each client from the core
// its fork group owns.  Within a fork every USTOR check passes — that is
// the whole point of the attack — but clients in different forks stop
// seeing each other's operations, and the signed versions they commit
// become ≼-incomparable.  USTOR alone never notices; FAUST's offline
// version exchange does (Def. 5, detection completeness), which the
// adversary cannot prevent because it does not control the client-to-
// client channel.
//
// Building blocks:
//   * partition at start (classic SUNDR-style fork),
//   * split(c): fork a client off mid-execution with a copy of the state
//     (equivalently: serve it an eternally stale snapshot — a replay
//     attack is a fork whose core stops receiving others' updates),
//   * leak_submit(): replay one client's SUBMIT into another fork without
//     its COMMIT — exactly the move that produces the weak-fork-
//     linearizable history of Figure 3.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "ustor/server.h"

namespace faust::adversary {

/// A server that maintains several independent copies of the protocol
/// state and assigns each client to one of them.
class ForkingServer : public net::Node {
 public:
  /// All clients start in fork 0 (a single, correct-looking world).
  ForkingServer(int n, net::Transport& net, NodeId self = kServerNode);

  /// Moves `c` to fork `fork` (which must exist). Its future operations
  /// run against that fork's state.
  void assign(ClientId c, int fork);

  /// Creates a new fork whose state is a deep copy of `c`'s current fork
  /// and moves `c` into it. From here on, `c` lives in a frozen world that
  /// only its own operations advance — the "stale snapshot / replay"
  /// attack. Returns the new fork index.
  int split(ClientId c);

  /// Creates a new, completely empty fork and moves `c` into it: the
  /// server pretends no other client ever existed. Returns the fork index.
  /// Only *consistent* for a victim with no completed operations (the
  /// Figure 3 situation) — an empty world cannot extend a non-zero
  /// version, so a seasoned victim detects this on its next operation
  /// (line 36 of Algorithm 1).
  int isolate(ClientId c);

  /// Replays a captured SUBMIT of some client into `fork`'s core without
  /// the matching COMMIT — making that operation appear as a concurrent,
  /// uncommitted operation in the fork (Figure 3's enabling move).
  void leak_submit(int fork, const ustor::SubmitMessage& m);

  /// Last SUBMIT message captured from `c` (nullptr if none yet).
  const ustor::SubmitMessage* last_submit(ClientId c) const;

  int fork_of(ClientId c) const;
  int num_forks() const { return static_cast<int>(cores_.size()); }
  ustor::ServerCore& core(int fork) { return cores_[static_cast<std::size_t>(fork)]; }
  const ustor::ServerCore& core(int fork) const {
    return cores_[static_cast<std::size_t>(fork)];
  }

  void on_message(NodeId from, BytesView msg) override;

 private:
  const int n_;
  net::Transport& net_;
  const NodeId self_;
  std::vector<ustor::ServerCore> cores_;
  std::vector<int> fork_of_;  // index: client-1
  std::unordered_map<ClientId, ustor::SubmitMessage> captured_;
};

}  // namespace faust::adversary
