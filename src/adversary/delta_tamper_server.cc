#include "adversary/delta_tamper_server.h"

#include <span>
#include <utility>

namespace faust::adversary {

DeltaTamperServer::DeltaTamperServer(int n, net::Transport& net, DeltaTamper mode,
                                     ClientId victim, int fire_on_read, NodeId self)
    : core_(n), net_(net), self_(self), mode_(mode), victim_(victim),
      fire_on_read_(fire_on_read) {
  net_.attach(self_, *this);
}

void DeltaTamperServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;

  switch (*type) {
    case ustor::MsgType::kSubmit: {
      auto m = ustor::decode_submit(msg);
      if (!m.has_value()) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      const auto m = ustor::decode_submit_delta_view(msg);
      if (!m.has_value()) return;
      if (m->inv.oc == ustor::OpCode::kWrite) {
        // Delta writes are served honestly: the attack targets the read side.
        const auto reply = core_.process_submit_delta(*m, nullptr);
        if (!reply.has_value()) return;
        net_.send(self_, from, ustor::encode(*reply));
      } else {
        handle_delta_read(from, *m);
      }
      break;
    }
    case ustor::MsgType::kCommit: {
      auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

void DeltaTamperServer::handle_delta_read(NodeId from,
                                          const ustor::SubmitDeltaMessageView& m) {
  const ClientId j = m.inv.target;
  if (j < 1 || j > core_.n()) return;

  ustor::SubmitMessage owned;
  owned.t = m.t;
  owned.inv = ustor::InvocationTuple{m.inv.client, m.inv.oc, m.inv.target,
                                     Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
  owned.data_sig.assign(m.data_sig.begin(), m.data_sig.end());
  const ustor::ReplySnapshot reply = core_.process_submit(owned);

  ustor::ReadDeltaPlan plan;
  const auto serving = core_.plan_read_delta(j, m.base_digest, &plan);

  const bool fire = m.inv.client == victim_ && ++victim_reads_ == fire_on_read_ &&
                    mode_ != DeltaTamper::kNone && !fired_;
  if (!fire) {
    if (serving == ustor::ServerCore::ReadServing::kFull) {
      net_.send(self_, from, ustor::encode(reply));
    } else {
      net_.send(self_, from, ustor::encode_reply_delta(reply, plan));
    }
    return;
  }
  fired_ = true;

  // Materialize a REPLY_DELTA the honest protocol would never send. The
  // version/L/P parts stay truthful — only the value transport lies, so
  // the victim's version checks pass and the data verification alone must
  // catch the corruption.
  ustor::ReplyDeltaMessage rd;
  rd.c = reply.c;
  rd.last = reply.last;
  rd.read.writer = reply.read->writer;
  rd.read.tj = reply.read->tj;
  rd.read.base_digest = m.base_digest;
  rd.read.data_sig = reply.read->data_sig.to_bytes();
  rd.L.assign(reply.L->begin(),
              reply.L->begin() + static_cast<std::ptrdiff_t>(reply.l_count));
  rd.P = *reply.P;
  const BytesView cur =
      reply.read->value.has_value() ? reply.read->value->view() : BytesView{};

  switch (mode_) {
    case DeltaTamper::kNone:
      break;
    case DeltaTamper::kSpliceBytes: {
      rd.read.unchanged = false;
      if (serving == ustor::ServerCore::ReadServing::kDelta) {
        rd.read.new_size = plan.new_size;
        for (const auto& run : plan.runs) {
          rd.read.splices.insert(rd.read.splices.end(), run.begin(), run.end());
        }
      } else {
        // No genuine delta available: ship a whole-value replacement splice.
        rd.read.new_size = cur.size();
        rd.read.splices.push_back(
            ustor::Splice{0, cur.size(), Bytes(cur.begin(), cur.end())});
      }
      for (ustor::Splice& s : rd.read.splices) {
        if (!s.insert.empty()) {
          s.insert[s.insert.size() / 2] ^= 0x01;  // the actual corruption
          break;
        }
      }
      break;
    }
    case DeltaTamper::kForgedRoot: {
      // The splices rebuild current-value‖0x5a; the DATA signature is the
      // genuine one over the current value, so every signature check the
      // victim can run on the bytes themselves passes — only re-rooting
      // the rebuilt value exposes the forgery.
      rd.read.unchanged = false;
      rd.read.new_size = cur.size() + 1;
      rd.read.splices.push_back(ustor::Splice{0, cur.size(), Bytes(cur.begin(), cur.end())});
      rd.read.splices.push_back(ustor::Splice{cur.size(), 0, Bytes{0x5a}});
      break;
    }
    case DeltaTamper::kLieUnchanged:
      // base_digest already echoes the victim's advertised base; claiming
      // "unchanged" while MEM[j] moved on pairs the old value with a DATA
      // signature over the new root.
      rd.read.unchanged = true;
      break;
    case DeltaTamper::kStaleBase:
      // A base the reader never advertised: unresolvable by construction.
      rd.read.unchanged = true;
      rd.read.base_digest[0] ^= 0x01;
      break;
  }
  net_.send(self_, from, ustor::encode(rd));
}

}  // namespace faust::adversary
