#include "adversary/tamper_server.h"

#include <utility>

#include "common/check.h"

namespace faust::adversary {
namespace {

/// Flips one bit; turns an empty byte string into a non-empty one so that
/// "corrupt" never accidentally equals the original.
void corrupt_bytes(Bytes& b) {
  if (b.empty()) {
    b.push_back(0xff);
  } else {
    b[b.size() / 2] ^= 0x01;
  }
}

void corrupt_value(ustor::Value& v) {
  if (v.has_value()) {
    corrupt_bytes(*v);
  } else {
    v = to_bytes("forged");
  }
}

}  // namespace

TamperServer::TamperServer(int n, net::Transport& net, Tamper mode, ClientId victim,
                           int fire_on_op, NodeId self)
    : core_(n), net_(net), self_(self), mode_(mode), victim_(victim), fire_on_op_(fire_on_op) {
  net_.attach(self_, *this);
}

void TamperServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;

  switch (*type) {
    case ustor::MsgType::kSubmit: {
      auto m = ustor::decode_submit(msg);
      if (!m.has_value()) return;
      handle_submit(from, *m);
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      // This adversary does not speak the delta reply protocol: it expands
      // the delta into the equivalent full SUBMIT and serves (or corrupts)
      // a full REPLY, which the D6 negotiation always accepts.
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value()) return;
      const auto m = ustor::expand_submit_delta(core_, *dm);
      if (!m.has_value()) return;
      handle_submit(from, *m);
      break;
    }
    case ustor::MsgType::kCommit: {
      auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      sver_history_[static_cast<ClientId>(from)].push_back(
          core_.sver(static_cast<ClientId>(from)));
      break;
    }
    default:
      break;
  }
}

void TamperServer::handle_submit(NodeId from, const ustor::SubmitMessage& m) {
  // Materialized: the tamper modes below mutate the reply freely.
  ustor::ReplyMessage reply = core_.process_submit(m).materialize();
  const ClientId client = m.inv.client;
  mem_history_[client].push_back(core_.mem(client));
  if (client == victim_ && ++victim_ops_ == fire_on_op_ && mode_ != Tamper::kNone && !fired_) {
    fired_ = true;
    if (mode_ == Tamper::kGarbage) {
      // Not even a decodable message.
      Bytes junk(64);
      for (std::size_t i = 0; i < junk.size(); ++i) {
        junk[i] = static_cast<std::uint8_t>(0xa5 ^ i);
      }
      net_.send(self_, from, junk);
      return;
    }
    reply = corrupt(std::move(reply), m);
  }
  net_.send(self_, from, ustor::encode(reply));
}

ustor::ReplyMessage TamperServer::corrupt(ustor::ReplyMessage reply,
                                          const ustor::SubmitMessage& m) {
  switch (mode_) {
    case Tamper::kNone:
    case Tamper::kGarbage:
      break;
    case Tamper::kValue:
    case Tamper::kValueFreshSig:
      if (reply.read.has_value()) corrupt_value(reply.read->value);
      break;
    case Tamper::kStaleTimestamp: {
      // Serve state from before C_j's latest operation, with its
      // perfectly valid old signatures: the signature checks (lines
      // 49–50) all pass, and only the freshness checks of lines 51–52 can
      // catch the replay.
      if (!reply.read.has_value()) break;
      const ClientId j = m.inv.target;
      const auto& mems = mem_history_[j];
      if (mems.size() < 2) break;  // nothing older to replay yet
      const ustor::ServerCore::MemEntry& stale = mems[mems.size() - 2];
      reply.read->tj = stale.t;
      reply.read->value = ustor::to_owned(stale.value);
      reply.read->data_sig = stale.data_sig.to_bytes();
      // Pair it with the newest old version whose own entry is <= stale.t
      // (the most convincing consistent lie available to the server).
      const auto& svers = sver_history_[j];
      ustor::SignedVersion old_sver;
      old_sver.version = ustor::Version(core_.n());
      for (const ustor::SignedVersion& sv : svers) {
        if (sv.version.v(j) <= stale.t) old_sver = sv;
      }
      reply.read->writer = old_sver;
      break;
    }
    case Tamper::kVersionVector: {
      ustor::Version& v = reply.last.version;
      if (v.n() > 0) {
        const ClientId k = (m.inv.client % v.n()) + 1;  // some index ≠ pattern-free
        v.v(k) += 1;
      }
      break;
    }
    case Tamper::kCommitSig:
      corrupt_bytes(reply.last.commit_sig);
      break;
    case Tamper::kWriterCommitSig:
      if (reply.read.has_value()) corrupt_bytes(reply.read->writer.commit_sig);
      break;
    case Tamper::kDataSig:
      if (reply.read.has_value()) corrupt_bytes(reply.read->data_sig);
      break;
    case Tamper::kProofSig:
      for (Bytes& p : reply.P) corrupt_bytes(p);
      break;
    case Tamper::kSubmitSigInL:
      if (!reply.L.empty()) corrupt_bytes(reply.L.front().submit_sig);
      break;
    case Tamper::kEchoSelfInL:
      reply.L.push_back(m.inv);
      break;
    case Tamper::kDuplicateInL:
      // A client can have at most one outstanding operation; a duplicate
      // entry forces the victim to re-verify the PROOF signature against
      // the chained digest, which C_k never signed (line 41 fires).
      if (!reply.L.empty()) reply.L.push_back(reply.L.front());
      break;
    case Tamper::kWrongCommitter:
      reply.c = (reply.c % core_.n()) + 1;
      break;
    case Tamper::kDropReadPayload:
      reply.read.reset();
      break;
    case Tamper::kAddReadPayload:
      if (!reply.read.has_value()) {
        ustor::ReadPayload rp;
        rp.writer.version = ustor::Version(core_.n());
        reply.read = std::move(rp);
      }
      break;
  }
  return reply;
}

}  // namespace faust::adversary
