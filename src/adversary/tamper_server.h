// A Byzantine server that corrupts protocol fields.
//
// Unlike the forking server (which lies *consistently* and is therefore
// undetectable by USTOR alone), TamperServer sends replies that violate
// some signed invariant.  Algorithm 1's checks must catch every such
// corruption immediately and attribute it to the right line — the
// parameterized test suite and the attack-campaign bench (C5) sweep every
// `Tamper` mode and assert the expected FailCause.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "ustor/server.h"

namespace faust::adversary {

/// What to corrupt in the victim's next read REPLY.
enum class Tamper {
  kNone,               // behave correctly (control group)
  kValue,              // flip bits in the returned register value
  kValueFreshSig,      // substitute a value, keep the (now wrong) DATA sig
  kStaleTimestamp,     // roll MEM[j].t back by one, keep everything else
  kVersionVector,      // inflate an entry of SVER[c]'s timestamp vector
  kCommitSig,          // corrupt the COMMIT signature of SVER[c]
  kWriterCommitSig,    // corrupt the COMMIT signature of SVER[j]
  kDataSig,            // corrupt MEM[j]'s DATA signature
  kProofSig,           // corrupt a PROOF signature in P
  kSubmitSigInL,       // corrupt a SUBMIT signature inside L
  kEchoSelfInL,        // list the victim's own operation in L
  kDuplicateInL,       // list another client's operation twice in L
  kWrongCommitter,     // claim the last committer is someone else
  kGarbage,            // reply with random bytes
  kDropReadPayload,    // answer a read with a write-shaped reply
  kAddReadPayload,     // answer a write with a read-shaped reply
};

/// Correct server except for one targeted corruption.
class TamperServer : public net::Node {
 public:
  /// Corrupts the reply to `victim`'s `fire_on_op`-th operation (1-based
  /// count of the victim's SUBMITs); all other traffic is served honestly.
  TamperServer(int n, net::Transport& net, Tamper mode, ClientId victim, int fire_on_op = 2,
               NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }

  /// True once the corruption has been sent.
  bool fired() const { return fired_; }

 private:
  /// Shared SUBMIT body for the full and (expanded) delta forms.
  void handle_submit(NodeId from, const ustor::SubmitMessage& m);

  ustor::ReplyMessage corrupt(ustor::ReplyMessage reply, const ustor::SubmitMessage& m);

  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  const Tamper mode_;
  const ClientId victim_;
  const int fire_on_op_;
  int victim_ops_ = 0;
  bool fired_ = false;

  // Full state history, kept so that the replay attack (kStaleTimestamp)
  // can serve *old* data with *valid* old signatures — the strongest form
  // of the attack, defeated only by the freshness checks of lines 51–52.
  std::unordered_map<ClientId, std::vector<ustor::ServerCore::MemEntry>> mem_history_;
  std::unordered_map<ClientId, std::vector<ustor::SignedVersion>> sver_history_;
};

}  // namespace faust::adversary
