// A Byzantine server that attacks the D6 delta wire protocol itself.
//
// TamperServer covers corruptions of the full REPLY; the delta path adds
// new lies a server could try — tampered splice payloads, a delta that
// rebuilds a value its DATA signature never covered, a false "unchanged"
// token, a base digest the reader never advertised. None of them may cost
// correctness: the victim must reject the reply, keep its verified memos
// untouched, fall back to a full re-read and complete with the right
// value, WITHOUT declaring the server faulty (a delta mismatch is not
// transferable evidence — an honest server can race a concurrent writer).
#pragma once

#include "net/transport.h"
#include "ustor/server.h"

namespace faust::adversary {

/// What to distort in the victim's targeted REPLY_DELTA.
enum class DeltaTamper {
  kNone,          // behave correctly (control group)
  kSpliceBytes,   // flip bits inside a splice's insert payload
  kForgedRoot,    // splices rebuild a value the (genuine) DATA sig never covered
  kLieUnchanged,  // claim "unchanged" for a register that moved on
  kStaleBase,     // echo a base digest the reader never advertised
};

/// A delta-speaking server, correct except for one targeted corruption of
/// the victim's `fire_on_read`-th advertised-base read.
class DeltaTamperServer : public net::Node {
 public:
  DeltaTamperServer(int n, net::Transport& net, DeltaTamper mode, ClientId victim,
                    int fire_on_read = 1, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }

  /// True once the corruption has been sent.
  bool fired() const { return fired_; }

 private:
  void handle_delta_read(NodeId from, const ustor::SubmitDeltaMessageView& m);

  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  const DeltaTamper mode_;
  const ClientId victim_;
  const int fire_on_read_;
  int victim_reads_ = 0;
  bool fired_ = false;
};

}  // namespace faust::adversary
