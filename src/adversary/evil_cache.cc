#include "adversary/evil_cache.h"

#include <memory>
#include <utility>

namespace faust::adversary {

using cache::OutSection;
using cache::SectionStatus;

void EvilCacheNode::corrupt_reply(NodeId /*to*/, std::vector<OutSection>& sections) {
  switch (mode_) {
    case Mode::kHonest:
    case Mode::kStaleBeyondTtl:
    case Mode::kFreezeFills:
      return;
    case Mode::kTamperValue:
      for (OutSection& s : sections) {
        if (s.status != SectionStatus::kHit || !s.value || s.value->empty()) continue;
        auto tampered = std::make_shared<Bytes>(*s.value);
        (*tampered)[0] ^= 0x01;
        s.value = std::move(tampered);
        ++corruptions_;
      }
      return;
    case Mode::kForgeDigest:
      for (OutSection& s : sections) {
        if (s.status != SectionStatus::kHit && s.status != SectionStatus::kUnchanged) continue;
        s.digest[0] ^= 0x01;
        ++corruptions_;
      }
      return;
    case Mode::kForgeSig:
      for (OutSection& s : sections) {
        if (s.status != SectionStatus::kHit && s.status != SectionStatus::kUnchanged) continue;
        if (s.sig.empty()) continue;
        s.sig[0] ^= 0x01;
        ++corruptions_;
      }
      return;
    case Mode::kBogusNegative:
      for (OutSection& s : sections) {
        s = OutSection{};
        s.status = SectionStatus::kNegative;
        ++corruptions_;
      }
      return;
    case Mode::kFakeUnchanged:
      // Claim "what you hold is current" without shipping bytes. The
      // client only accepts this when the writer's signature binds the
      // claimed timestamp to the EXACT digest it advertised — so this
      // succeeds precisely when it is true, and is rejected otherwise.
      for (OutSection& s : sections) {
        if (s.status != SectionStatus::kHit) continue;
        s.status = SectionStatus::kUnchanged;
        s.value.reset();
        ++corruptions_;
      }
      return;
  }
}

bool EvilCacheNode::entry_expired(const Entry& e) const {
  if (mode_ == Mode::kStaleBeyondTtl) return false;
  return cache::CacheNode::entry_expired(e);
}

bool EvilCacheNode::accept_fills() const { return mode_ != Mode::kFreezeFills; }

}  // namespace faust::adversary
