#include "adversary/forking_server.h"

#include "common/check.h"

namespace faust::adversary {

ForkingServer::ForkingServer(int n, net::Transport& net, NodeId self)
    : n_(n), net_(net), self_(self), fork_of_(static_cast<std::size_t>(n), 0) {
  cores_.emplace_back(n);
  net_.attach(self_, *this);
}

void ForkingServer::assign(ClientId c, int fork) {
  FAUST_CHECK(c >= 1 && c <= n_);
  FAUST_CHECK(fork >= 0 && fork < num_forks());
  fork_of_[static_cast<std::size_t>(c - 1)] = fork;
}

int ForkingServer::split(ClientId c) {
  FAUST_CHECK(c >= 1 && c <= n_);
  cores_.push_back(cores_[static_cast<std::size_t>(fork_of(c))]);  // deep copy
  const int fork = num_forks() - 1;
  fork_of_[static_cast<std::size_t>(c - 1)] = fork;
  return fork;
}

int ForkingServer::isolate(ClientId c) {
  FAUST_CHECK(c >= 1 && c <= n_);
  cores_.emplace_back(n_);
  const int fork = num_forks() - 1;
  fork_of_[static_cast<std::size_t>(c - 1)] = fork;
  return fork;
}

void ForkingServer::leak_submit(int fork, const ustor::SubmitMessage& m) {
  FAUST_CHECK(fork >= 0 && fork < num_forks());
  (void)cores_[static_cast<std::size_t>(fork)].process_submit(m);  // reply discarded
}

const ustor::SubmitMessage* ForkingServer::last_submit(ClientId c) const {
  auto it = captured_.find(c);
  return it == captured_.end() ? nullptr : &it->second;
}

int ForkingServer::fork_of(ClientId c) const {
  FAUST_CHECK(c >= 1 && c <= n_);
  return fork_of_[static_cast<std::size_t>(c - 1)];
}

void ForkingServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  const ClientId client = static_cast<ClientId>(from);
  if (client < 1 || client > n_) return;
  ustor::ServerCore& core = cores_[static_cast<std::size_t>(fork_of(client))];

  switch (*type) {
    case ustor::MsgType::kSubmit: {
      auto m = ustor::decode_submit(msg);
      if (!m.has_value()) return;
      captured_[client] = *m;
      const ustor::ReplySnapshot reply = core.process_submit(*m);
      net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      // Expand against the client's own fork (the base it last submitted
      // lives there) and serve a full REPLY — always accepted under D6.
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value()) return;
      auto m = ustor::expand_submit_delta(core, *dm);
      if (!m.has_value()) return;
      captured_[client] = *m;
      const ustor::ReplySnapshot reply = core.process_submit(*m);
      net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kCommit: {
      auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core.process_commit(client, *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::adversary
