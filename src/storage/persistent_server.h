// A crash-durable USTOR server: write-ahead logging of every protocol
// message, periodic integrity-rooted snapshots, and exact state
// reconstruction on restart.
//
// Algorithm 2's state (MEM, SVER, L, P, c) is a deterministic function of
// the sequence of SUBMIT/COMMIT messages processed, so logging that
// sequence before processing (WAL rule) makes the server recoverable: a
// restarted server replays the log through a fresh ServerCore and ends up
// in byte-identical state — clients notice nothing (storage_test proves
// it: versions keep extending across a crash+recover, no fail_i fires).
//
// Snapshots bound replay time: every `snapshot_every` WAL records the
// full protocol state (ustor/state_codec) plus the per-client reply cache
// is written through SnapshotStore, whose integrity root is the same
// crypto::ChunkedHasher chunk tree the verifiers use. Recovery loads the
// snapshot only if that root re-verifies; a tampered or torn snapshot is
// rejected and recovery falls back to full log replay — slower, never
// wrong (DESIGN.md D7).
//
// Exactly-once resume: a client that reconnects after a server restart
// re-sends its latest COMMIT and its in-flight SUBMIT (ustor::Client::
// resubmit). The submit timestamp doubles as a per-client sequence
// number (MEM[i].t is the last timestamp client i submitted — reads and
// writes both advance it), so a SUBMIT with t <= MEM[from].t is a
// duplicate: the server resends the CACHED original reply instead of
// reprocessing (reprocessing would append a second L entry and trip the
// client's self-concurrency check). The cache is rebuilt during replay
// and carried inside snapshots, so dedup survives arbitrarily many
// crashes.
//
// Durability is a server-operator concern; it adds nothing to the trust
// model (a Byzantine server could "recover" into any state it likes —
// and would then be caught exactly as in the adversary tests).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "storage/log_store.h"
#include "storage/snapshot_store.h"
#include "ustor/server.h"

namespace faust::storage {

/// Knobs for the snapshot cadence.
struct DurabilityOptions {
  /// Snapshot after this many new WAL records (0 = log-only, never
  /// snapshot automatically; force_snapshot() still works when a
  /// snapshot path exists).
  std::size_t snapshot_every = 0;
};

/// Correct server with a write-ahead log and verified snapshots.
class PersistentServer : public net::Node {
 public:
  /// Log-only mode: opens/creates the WAL at `log_path` and replays any
  /// existing records (crash recovery happens in the constructor).
  PersistentServer(int n, net::Transport& net, std::string log_path,
                   NodeId self = kServerNode);

  /// Directory mode: WAL at `dir`/wal.log, snapshot at `dir`/snapshot.bin.
  /// Recovery prefers a verified snapshot + log-suffix replay; a rejected
  /// snapshot falls back to full replay. `dir` must exist.
  PersistentServer(int n, net::Transport& net, const std::string& dir,
                   DurabilityOptions options, NodeId self = kServerNode);

  ~PersistentServer() override;

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }
  const ustor::ServerCore& core() const { return core_; }

  /// Writes a snapshot now (no-op without a snapshot path). Returns
  /// false on I/O failure.
  bool force_snapshot();

  /// Records delivered from the log at construction (suffix only when a
  /// snapshot was accepted).
  std::size_t recovered_records() const { return recovered_; }
  /// True iff construction restored state from a verified snapshot.
  bool recovered_from_snapshot() const { return recovered_from_snapshot_; }
  /// Snapshots written through this handle.
  std::uint64_t snapshots_written() const { return snaps_ ? snaps_->saves() : 0; }
  /// Snapshot loads refused for integrity or framing reasons.
  std::uint64_t snapshots_rejected() const { return snaps_ ? snaps_->rejects() : 0; }
  /// Duplicate SUBMITs answered from the reply cache (client resume).
  std::uint64_t duplicate_replies() const { return duplicate_replies_; }
  /// SUBMITs parked behind a not-yet-processed predecessor COMMIT (D10:
  /// a lossy/reordering transport delivered the SUBMIT first; processing
  /// it then would be a false self-concurrency at a correct client).
  std::uint64_t parked_submits() const { return parked_submits_; }
  /// WAL records refused at replay because their CRC did not match.
  std::uint64_t checksum_failures() const { return log_.checksum_failures(); }
  /// Total intact WAL records (replayed + appended) through this handle.
  std::uint64_t wal_records() const { return log_.records(); }

 private:
  void recover();

  /// Applies one logged record (sender ‖ raw message) to the core,
  /// caching the encoded reply; sends it only when `live`.
  void apply(NodeId from, BytesView msg, bool live);

  /// Snapshot payload: state-codec image ‖ per-client cached replies.
  Bytes snapshot_payload() const;
  bool restore_from_payload(BytesView payload);
  void maybe_snapshot();

  /// Logs + applies every parked SUBMIT whose blocking L entry is gone;
  /// called after each live COMMIT. Parked messages are NOT in the WAL
  /// yet — they are logged here, at dispatch, so replay order equals
  /// live processing order.
  void release_parked();

  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  LogStore log_;
  std::unique_ptr<SnapshotStore> snaps_;
  DurabilityOptions options_;
  std::vector<Bytes> last_reply_;  // per client, original encoded bytes
  std::vector<Bytes> parked_;      // per client, one held-back SUBMIT (empty = none)
  std::size_t recovered_ = 0;
  bool recovered_from_snapshot_ = false;
  std::uint64_t duplicate_replies_ = 0;
  std::uint64_t parked_submits_ = 0;
  std::uint64_t last_snapshot_records_ = 0;
};

}  // namespace faust::storage
