// A crash-durable USTOR server: write-ahead logging of every protocol
// message, with exact state reconstruction on restart.
//
// Algorithm 2's state (MEM, SVER, L, P, c) is a deterministic function of
// the sequence of SUBMIT/COMMIT messages processed, so logging that
// sequence before processing (WAL rule) makes the server recoverable: a
// restarted server replays the log through a fresh ServerCore and ends up
// in byte-identical state — clients notice nothing (storage_test proves
// it: versions keep extending across a crash+recover, no fail_i fires).
// Durability is a server-operator concern; it adds nothing to the trust
// model (a Byzantine server could "recover" into any state it likes —
// and would then be caught exactly as in the adversary tests).
#pragma once

#include <memory>
#include <string>

#include "net/transport.h"
#include "storage/log_store.h"
#include "ustor/server.h"

namespace faust::storage {

/// Correct server with a write-ahead log.
class PersistentServer : public net::Node {
 public:
  /// Opens/creates the log at `log_path` and replays any existing records
  /// (crash recovery happens in the constructor).
  PersistentServer(int n, net::Transport& net, std::string log_path,
                   NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ustor::ServerCore& core() { return core_; }
  const ustor::ServerCore& core() const { return core_; }

  /// Records recovered from the log at construction.
  std::size_t recovered_records() const { return recovered_; }

 private:
  /// Applies one logged record (sender ‖ raw message) to the core,
  /// optionally sending the reply (suppressed during recovery).
  void apply(NodeId from, BytesView msg, bool live);

  ustor::ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  LogStore log_;
  std::size_t recovered_ = 0;
};

}  // namespace faust::storage
