#include "storage/persistent_server.h"

#include "ustor/state_codec.h"
#include "wire/encoder.h"

namespace faust::storage {

PersistentServer::PersistentServer(int n, net::Transport& net, std::string log_path,
                                   NodeId self)
    : core_(n),
      net_(net),
      self_(self),
      log_(std::move(log_path)),
      last_reply_(static_cast<std::size_t>(n)),
      parked_(static_cast<std::size_t>(n)) {
  recover();
  net_.attach(self_, *this);
}

PersistentServer::PersistentServer(int n, net::Transport& net, const std::string& dir,
                                   DurabilityOptions options, NodeId self)
    : core_(n),
      net_(net),
      self_(self),
      log_(dir + "/wal.log"),
      snaps_(std::make_unique<SnapshotStore>(dir + "/snapshot.bin")),
      options_(options),
      last_reply_(static_cast<std::size_t>(n)),
      parked_(static_cast<std::size_t>(n)) {
  recover();
  net_.attach(self_, *this);
}

PersistentServer::~PersistentServer() { net_.detach(self_); }

void PersistentServer::recover() {
  std::size_t skip = 0;
  if (snaps_ != nullptr) {
    if (auto img = snaps_->load(); img.has_value()) {
      if (restore_from_payload(img->payload)) {
        recovered_from_snapshot_ = true;
        skip = static_cast<std::size_t>(img->log_records);
      }
      // A payload that decodes to garbage despite a matching chunk-tree
      // root would mean a ChunkedHasher collision; treat it like any
      // other rejected snapshot and fall back to full replay.
    }
  }
  recovered_ = log_.replay(
      [this](BytesView record) {
        // Record layout: u32 sender ‖ raw message bytes.
        wire::Reader r(record);
        const NodeId from = static_cast<NodeId>(r.get_u32());
        if (!r.ok()) return;
        const Bytes msg = r.get_raw(r.remaining());
        apply(from, msg, /*live=*/false);
      },
      skip);
  last_snapshot_records_ = skip;
  if (skip > log_.records()) {
    // The snapshot claims records the (externally truncated) log no
    // longer holds. The snapshot state is durable and authoritative —
    // re-anchor its coverage at the log's actual length so the next
    // recovery skips the right amount.
    force_snapshot();
  }
}

bool PersistentServer::restore_from_payload(BytesView payload) {
  wire::Reader r(payload);
  const BytesView image = r.get_bytes_view();
  if (wire::Reader::is_error(image)) return false;
  std::vector<Bytes> replies(last_reply_.size());
  for (auto& rep : replies) {
    rep = r.get_bytes();
    if (!r.ok()) return false;
  }
  if (!r.exhausted()) return false;
  if (!ustor::restore_server_state(core_, image)) return false;
  last_reply_ = std::move(replies);
  return true;
}

Bytes PersistentServer::snapshot_payload() const {
  wire::Writer w;
  w.put_bytes(ustor::encode_server_state(core_));
  for (const Bytes& rep : last_reply_) w.put_bytes(rep);
  return w.take();
}

bool PersistentServer::force_snapshot() {
  if (snaps_ == nullptr) return false;
  if (!snaps_->save(log_.records(), snapshot_payload())) return false;
  last_snapshot_records_ = log_.records();
  return true;
}

void PersistentServer::maybe_snapshot() {
  if (snaps_ == nullptr || options_.snapshot_every == 0) return;
  if (log_.records() - last_snapshot_records_ >= options_.snapshot_every) {
    force_snapshot();
  }
}

void PersistentServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  if (*type != ustor::MsgType::kSubmit && *type != ustor::MsgType::kSubmitDelta &&
      *type != ustor::MsgType::kCommit)
    return;

  // Duplicate SUBMIT (a reconnecting client resending its in-flight op):
  // MEM[from].t is the last timestamp `from` submitted, so anything at or
  // below it was already processed. Serve the cached original reply —
  // reprocessing would duplicate the op's L entry and the WAL record.
  if (*type != ustor::MsgType::kCommit && from >= 1 &&
      from <= static_cast<NodeId>(core_.n())) {
    Timestamp t = 0;
    bool decoded = false;
    std::optional<ustor::CommitMessage> piggyback;
    if (*type == ustor::MsgType::kSubmit) {
      const auto v = ustor::decode_submit_view(msg);
      if (!v.has_value() || v->inv.client != from) return;
      t = v->t;
      decoded = true;
      if (v->has_commit) {
        piggyback = ustor::CommitMessage{v->commit_version,
                                         Bytes(v->commit_sig.begin(), v->commit_sig.end()),
                                         Bytes(v->proof_sig.begin(), v->proof_sig.end())};
      }
    } else {
      const auto v = ustor::decode_submit_delta_view(msg);
      if (!v.has_value() || v->inv.client != from) return;
      t = v->t;
      decoded = true;
      if (v->has_commit) {
        piggyback = ustor::CommitMessage{v->commit_version,
                                         Bytes(v->commit_sig.begin(), v->commit_sig.end()),
                                         Bytes(v->proof_sig.begin(), v->proof_sig.end())};
      }
    }

    // D10 piggybacked COMMIT: when it advances SVER[from], log and apply
    // it as its own record BEFORE the dedup/parking decisions — exactly
    // as if a standalone COMMIT had arrived just ahead of this SUBMIT.
    // The separate record matters because a parked submit is unlogged:
    // the commit's state change (an L prune other clients' replies will
    // observe) must still land in the WAL in processing order, or replay
    // would diverge from the live run.
    if (piggyback.has_value() &&
        !ustor::version_leq(piggyback->version,
                            core_.sver(static_cast<ClientId>(from)).version)) {
      const Bytes commit_bytes = ustor::encode(*piggyback);
      wire::Writer cw;
      cw.put_u32(static_cast<std::uint32_t>(from));
      cw.put_raw(BytesView(commit_bytes));
      if (!log_.append(cw.buffer())) return;
      core_.process_commit(static_cast<ClientId>(from), *piggyback);
      release_parked();
    }

    if (decoded && t <= core_.mem(static_cast<ClientId>(from)).t) {
      ++duplicate_replies_;
      const Bytes& cached = last_reply_[static_cast<std::size_t>(from) - 1];
      if (!cached.empty()) net_.send(self_, from, Bytes(cached));
      return;
    }

    // D10 reorder tolerance: this SUBMIT overtook the client's previous
    // COMMIT (L still lists an op of the client, so processing now would
    // be a false self-concurrency). Park it — unlogged — until that
    // COMMIT lands or the client's retransmission (COMMIT before SUBMIT)
    // drains the slot; release_parked() appends the WAL record at
    // dispatch time, keeping replay order equal to processing order.
    if (core_.client_in_L(static_cast<ClientId>(from))) {
      parked_[static_cast<std::size_t>(from) - 1] = Bytes(msg.begin(), msg.end());
      ++parked_submits_;
      return;
    }
  }

  // Write-ahead: the record is durable before the state changes or any
  // reply leaves. A crash after the append and before the reply costs the
  // client a retransmission-free... nothing: channels are reliable only
  // while the server is up; the op simply never completes, which the
  // model permits for a crashed server. What recovery must preserve is
  // exactly the processed prefix — and it does.
  wire::Writer w;
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_raw(msg);
  if (!log_.append(w.buffer())) return;  // disk failure: refuse to proceed
  apply(from, msg, /*live=*/true);
  if (*type == ustor::MsgType::kCommit) release_parked();
  maybe_snapshot();
}

void PersistentServer::release_parked() {
  // A COMMIT's L prune can clear other clients' entries too: scan all
  // slots. Releasing a SUBMIT never prunes L, so one pass settles.
  for (ClientId i = 1; i <= core_.n(); ++i) {
    Bytes& slot = parked_[static_cast<std::size_t>(i - 1)];
    if (slot.empty() || core_.client_in_L(i)) continue;
    const Bytes msg = std::move(slot);
    slot.clear();
    wire::Writer w;
    w.put_u32(static_cast<std::uint32_t>(i));
    w.put_raw(msg);
    if (!log_.append(w.buffer())) return;
    apply(static_cast<NodeId>(i), msg, /*live=*/true);
  }
}

void PersistentServer::apply(NodeId from, BytesView msg, bool live) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  switch (*type) {
    case ustor::MsgType::kSubmit: {
      const auto m = ustor::decode_submit(msg);
      if (!m.has_value() || m->inv.client != from) return;
      // Piggybacked COMMIT: idempotent under the monotone gate (the live
      // path already applied it from its own WAL record).
      if (m->commit.has_value()) {
        core_.process_commit(static_cast<ClientId>(from), *m->commit);
      }
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      // Encode even during replay: the cache must hold the ORIGINAL
      // reply bytes so a post-restart duplicate gets the answer the
      // pre-crash run computed.
      Bytes encoded = ustor::encode(reply);
      if (live) net_.send(self_, from, Bytes(encoded));
      last_reply_[static_cast<std::size_t>(from) - 1] = std::move(encoded);
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      // The WAL stores the delta as received; expansion against the core's
      // current state is deterministic because replay preserves order, so
      // recovery rebuilds exactly the state the live run had.
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value() || dm->inv.client != from) return;
      if (dm->has_commit) {
        core_.process_commit(
            static_cast<ClientId>(from),
            ustor::CommitMessage{dm->commit_version,
                                 Bytes(dm->commit_sig.begin(), dm->commit_sig.end()),
                                 Bytes(dm->proof_sig.begin(), dm->proof_sig.end())});
      }
      const auto m = ustor::expand_submit_delta(core_, *dm);
      if (!m.has_value()) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      Bytes encoded = ustor::encode(reply);
      if (live) net_.send(self_, from, Bytes(encoded));
      last_reply_[static_cast<std::size_t>(from) - 1] = std::move(encoded);
      break;
    }
    case ustor::MsgType::kCommit: {
      const auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::storage
