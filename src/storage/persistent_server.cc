#include "storage/persistent_server.h"

#include "ustor/state_codec.h"
#include "wire/encoder.h"

namespace faust::storage {

PersistentServer::PersistentServer(int n, net::Transport& net, std::string log_path,
                                   NodeId self)
    : core_(n),
      net_(net),
      self_(self),
      log_(std::move(log_path)),
      last_reply_(static_cast<std::size_t>(n)) {
  recover();
  net_.attach(self_, *this);
}

PersistentServer::PersistentServer(int n, net::Transport& net, const std::string& dir,
                                   DurabilityOptions options, NodeId self)
    : core_(n),
      net_(net),
      self_(self),
      log_(dir + "/wal.log"),
      snaps_(std::make_unique<SnapshotStore>(dir + "/snapshot.bin")),
      options_(options),
      last_reply_(static_cast<std::size_t>(n)) {
  recover();
  net_.attach(self_, *this);
}

PersistentServer::~PersistentServer() { net_.detach(self_); }

void PersistentServer::recover() {
  std::size_t skip = 0;
  if (snaps_ != nullptr) {
    if (auto img = snaps_->load(); img.has_value()) {
      if (restore_from_payload(img->payload)) {
        recovered_from_snapshot_ = true;
        skip = static_cast<std::size_t>(img->log_records);
      }
      // A payload that decodes to garbage despite a matching chunk-tree
      // root would mean a ChunkedHasher collision; treat it like any
      // other rejected snapshot and fall back to full replay.
    }
  }
  recovered_ = log_.replay(
      [this](BytesView record) {
        // Record layout: u32 sender ‖ raw message bytes.
        wire::Reader r(record);
        const NodeId from = static_cast<NodeId>(r.get_u32());
        if (!r.ok()) return;
        const Bytes msg = r.get_raw(r.remaining());
        apply(from, msg, /*live=*/false);
      },
      skip);
  last_snapshot_records_ = skip;
  if (skip > log_.records()) {
    // The snapshot claims records the (externally truncated) log no
    // longer holds. The snapshot state is durable and authoritative —
    // re-anchor its coverage at the log's actual length so the next
    // recovery skips the right amount.
    force_snapshot();
  }
}

bool PersistentServer::restore_from_payload(BytesView payload) {
  wire::Reader r(payload);
  const BytesView image = r.get_bytes_view();
  if (wire::Reader::is_error(image)) return false;
  std::vector<Bytes> replies(last_reply_.size());
  for (auto& rep : replies) {
    rep = r.get_bytes();
    if (!r.ok()) return false;
  }
  if (!r.exhausted()) return false;
  if (!ustor::restore_server_state(core_, image)) return false;
  last_reply_ = std::move(replies);
  return true;
}

Bytes PersistentServer::snapshot_payload() const {
  wire::Writer w;
  w.put_bytes(ustor::encode_server_state(core_));
  for (const Bytes& rep : last_reply_) w.put_bytes(rep);
  return w.take();
}

bool PersistentServer::force_snapshot() {
  if (snaps_ == nullptr) return false;
  if (!snaps_->save(log_.records(), snapshot_payload())) return false;
  last_snapshot_records_ = log_.records();
  return true;
}

void PersistentServer::maybe_snapshot() {
  if (snaps_ == nullptr || options_.snapshot_every == 0) return;
  if (log_.records() - last_snapshot_records_ >= options_.snapshot_every) {
    force_snapshot();
  }
}

void PersistentServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  if (*type != ustor::MsgType::kSubmit && *type != ustor::MsgType::kSubmitDelta &&
      *type != ustor::MsgType::kCommit)
    return;

  // Duplicate SUBMIT (a reconnecting client resending its in-flight op):
  // MEM[from].t is the last timestamp `from` submitted, so anything at or
  // below it was already processed. Serve the cached original reply —
  // reprocessing would duplicate the op's L entry and the WAL record.
  if (*type != ustor::MsgType::kCommit && from >= 1 &&
      from <= static_cast<NodeId>(core_.n())) {
    Timestamp t = 0;
    bool decoded = false;
    if (*type == ustor::MsgType::kSubmit) {
      const auto v = ustor::decode_submit_view(msg);
      if (!v.has_value() || v->inv.client != from) return;
      t = v->t;
      decoded = true;
    } else {
      const auto v = ustor::decode_submit_delta_view(msg);
      if (!v.has_value() || v->inv.client != from) return;
      t = v->t;
      decoded = true;
    }
    if (decoded && t <= core_.mem(static_cast<ClientId>(from)).t) {
      ++duplicate_replies_;
      const Bytes& cached = last_reply_[static_cast<std::size_t>(from) - 1];
      if (!cached.empty()) net_.send(self_, from, Bytes(cached));
      return;
    }
  }

  // Write-ahead: the record is durable before the state changes or any
  // reply leaves. A crash after the append and before the reply costs the
  // client a retransmission-free... nothing: channels are reliable only
  // while the server is up; the op simply never completes, which the
  // model permits for a crashed server. What recovery must preserve is
  // exactly the processed prefix — and it does.
  wire::Writer w;
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_raw(msg);
  if (!log_.append(w.buffer())) return;  // disk failure: refuse to proceed
  apply(from, msg, /*live=*/true);
  maybe_snapshot();
}

void PersistentServer::apply(NodeId from, BytesView msg, bool live) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  switch (*type) {
    case ustor::MsgType::kSubmit: {
      const auto m = ustor::decode_submit(msg);
      if (!m.has_value() || m->inv.client != from) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      // Encode even during replay: the cache must hold the ORIGINAL
      // reply bytes so a post-restart duplicate gets the answer the
      // pre-crash run computed.
      Bytes encoded = ustor::encode(reply);
      if (live) net_.send(self_, from, Bytes(encoded));
      last_reply_[static_cast<std::size_t>(from) - 1] = std::move(encoded);
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      // The WAL stores the delta as received; expansion against the core's
      // current state is deterministic because replay preserves order, so
      // recovery rebuilds exactly the state the live run had.
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value() || dm->inv.client != from) return;
      const auto m = ustor::expand_submit_delta(core_, *dm);
      if (!m.has_value()) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      Bytes encoded = ustor::encode(reply);
      if (live) net_.send(self_, from, Bytes(encoded));
      last_reply_[static_cast<std::size_t>(from) - 1] = std::move(encoded);
      break;
    }
    case ustor::MsgType::kCommit: {
      const auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::storage
