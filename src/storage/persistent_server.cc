#include "storage/persistent_server.h"

#include "wire/encoder.h"

namespace faust::storage {

PersistentServer::PersistentServer(int n, net::Transport& net, std::string log_path,
                                   NodeId self)
    : core_(n), net_(net), self_(self), log_(std::move(log_path)) {
  recovered_ = log_.replay([this](BytesView record) {
    // Record layout: u32 sender ‖ raw message bytes.
    wire::Reader r(record);
    const NodeId from = static_cast<NodeId>(r.get_u32());
    if (!r.ok()) return;
    const Bytes msg = r.get_raw(r.remaining());
    apply(from, msg, /*live=*/false);
  });
  net_.attach(self_, *this);
}

void PersistentServer::on_message(NodeId from, BytesView msg) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  if (*type != ustor::MsgType::kSubmit && *type != ustor::MsgType::kSubmitDelta &&
      *type != ustor::MsgType::kCommit)
    return;

  // Write-ahead: the record is durable before the state changes or any
  // reply leaves. A crash after the append and before the reply costs the
  // client a retransmission-free... nothing: channels are reliable only
  // while the server is up; the op simply never completes, which the
  // model permits for a crashed server. What recovery must preserve is
  // exactly the processed prefix — and it does.
  wire::Writer w;
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_raw(msg);
  if (!log_.append(w.buffer())) return;  // disk failure: refuse to proceed
  apply(from, msg, /*live=*/true);
}

void PersistentServer::apply(NodeId from, BytesView msg, bool live) {
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  switch (*type) {
    case ustor::MsgType::kSubmit: {
      const auto m = ustor::decode_submit(msg);
      if (!m.has_value() || m->inv.client != from) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      if (live) net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kSubmitDelta: {
      // The WAL stores the delta as received; expansion against the core's
      // current state is deterministic because replay preserves order, so
      // recovery rebuilds exactly the state the live run had.
      const auto dm = ustor::decode_submit_delta_view(msg);
      if (!dm.has_value() || dm->inv.client != from) return;
      const auto m = ustor::expand_submit_delta(core_, *dm);
      if (!m.has_value()) return;
      const ustor::ReplySnapshot reply = core_.process_submit(*m);
      if (live) net_.send(self_, from, ustor::encode(reply));
      break;
    }
    case ustor::MsgType::kCommit: {
      const auto m = ustor::decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::storage
