// Append-only record log with CRC framing — the durability substrate for
// the persistent USTOR server.
//
// Record layout: u32 length ‖ u32 crc32(payload) ‖ payload. `replay`
// stops at the first torn or corrupt record (the standard
// write-ahead-log recovery rule: a crash may tear the tail, never the
// middle), and `append` after recovery truncates the torn tail.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace faust::storage {

/// A single append-only log file.
class LogStore {
 public:
  /// Opens (creating if absent) the log at `path`.
  explicit LogStore(std::string path);
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Appends one record and flushes it to the OS.
  /// Returns false on I/O failure.
  bool append(BytesView payload);

  /// Replays all intact records from the start, invoking `fn` per record.
  /// Returns the number of records replayed. Subsequent appends go after
  /// the last intact record (a torn tail is discarded).
  std::size_t replay(const std::function<void(BytesView)>& fn);

  /// Number of records appended + replayed through this handle.
  std::uint64_t records() const { return records_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  long append_offset_ = 0;  // end of the intact prefix
};

}  // namespace faust::storage
