// Append-only record log with CRC framing — the durability substrate for
// the persistent USTOR server.
//
// Record layout: u32 length ‖ u32 crc32(payload) ‖ payload. `replay`
// stops at the first torn or corrupt record (the standard
// write-ahead-log recovery rule: a crash may tear the tail, never the
// middle), and `append` after recovery truncates the torn tail.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace faust::storage {

/// A single append-only log file.
class LogStore {
 public:
  /// Opens (creating if absent) the log at `path`.
  explicit LogStore(std::string path);
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Appends one record and flushes it to the OS.
  /// Returns false on I/O failure.
  bool append(BytesView payload);

  /// Replays all intact records from the start, invoking `fn` per record
  /// — except the first `skip_records`, whose framing and checksums are
  /// still validated (they locate the record boundaries) but whose
  /// payloads are not delivered. Snapshot recovery uses the skip: the
  /// snapshot stands in for the covered prefix, and only the suffix is
  /// re-applied. Returns the number of records DELIVERED to `fn`.
  /// Subsequent appends go after the last intact record (a torn tail is
  /// discarded).
  std::size_t replay(const std::function<void(BytesView)>& fn, std::size_t skip_records = 0);

  /// Number of records appended + replayed through this handle.
  std::uint64_t records() const { return records_; }

  /// Records rejected at replay because their stored CRC did not match
  /// the payload (disk corruption — as opposed to a short read, which is
  /// an ordinary torn tail). Both conditions stop the replay; only this
  /// one indicates the bytes on disk were altered.
  std::uint64_t checksum_failures() const { return checksum_failures_; }

  /// Bytes discarded from the physical end of the file at the last
  /// replay (torn tail plus anything after a corrupt record).
  std::uint64_t truncated_bytes() const { return truncated_bytes_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  std::uint64_t checksum_failures_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  long append_offset_ = 0;  // end of the intact prefix
};

}  // namespace faust::storage
