#include "storage/snapshot_store.h"

#include <cstdio>
#include <cstring>

#include "crypto/chunked_hasher.h"

namespace faust::storage {
namespace {

constexpr std::uint32_t kMagic = 0x46534e50;   // "FSNP"
constexpr std::uint32_t kFormat = 1;
constexpr std::uint32_t kMaxPayload = 256u << 20;  // 256 MiB sanity cap
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4 + 32;

void put_u32_le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64_le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

bool SnapshotStore::save(std::uint64_t log_records, BytesView payload) {
  if (payload.size() > kMaxPayload) return false;
  const auto root = crypto::ChunkedHasher::digest(payload);

  std::uint8_t header[kHeaderSize];
  put_u32_le(header, kMagic);
  put_u32_le(header + 4, kFormat);
  put_u64_le(header + 8, log_records);
  put_u32_le(header + 16, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(header + 20, root.data(), root.size());

  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);
  if (ok && !payload.empty()) {
    ok = std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  }
  ok = (std::fflush(f) == 0) && ok;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  ++saves_;
  return true;
}

std::optional<SnapshotImage> SnapshotStore::load() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::nullopt;  // missing is not a reject

  std::uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    ++rejects_;
    return std::nullopt;
  }
  const std::uint32_t magic = get_u32_le(header);
  const std::uint32_t format = get_u32_le(header + 4);
  const std::uint64_t log_records = get_u64_le(header + 8);
  const std::uint32_t payload_len = get_u32_le(header + 16);
  if (magic != kMagic || format != kFormat || payload_len > kMaxPayload) {
    std::fclose(f);
    ++rejects_;
    return std::nullopt;
  }

  Bytes payload(payload_len);
  const std::size_t got =
      payload_len == 0 ? 0 : std::fread(payload.data(), 1, payload.size(), f);
  // Trailing garbage after the payload is also grounds for rejection: a
  // well-formed snapshot is exactly header + payload.
  const bool at_end = std::fgetc(f) == EOF;
  std::fclose(f);
  if (got != payload.size() || !at_end) {
    ++rejects_;
    return std::nullopt;
  }

  const auto root = crypto::ChunkedHasher::digest(payload);
  if (std::memcmp(root.data(), header + 20, root.size()) != 0) {
    ++rejects_;
    return std::nullopt;
  }
  return SnapshotImage{log_records, std::move(payload)};
}

}  // namespace faust::storage
