// Single-file snapshot store whose integrity root is the SAME chunk-tree
// digest the protocol's verifiers use (crypto::ChunkedHasher), so restart
// recovery re-verifies durable state with the machinery that already
// guards the wire: a snapshot whose recomputed root disagrees with the
// stored root — a tampered or torn file — is REJECTED, and the server
// falls back to full log replay (DESIGN.md D7).
//
// File layout (little-endian):
//   u32 magic  u32 format  u64 log_records  u32 payload_len
//   32-byte ChunkedHasher root of payload   payload bytes
//
// `log_records` records how many WAL records the payload already covers;
// recovery replays only the suffix (LogStore::replay skip parameter).
// Saves are atomic: write to `path + ".tmp"`, flush, rename over `path` —
// a crash mid-save leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace faust::storage {

/// A decoded, integrity-verified snapshot.
struct SnapshotImage {
  std::uint64_t log_records = 0;  // WAL records the payload covers
  Bytes payload;                  // opaque to this layer (ustor/state_codec)
};

/// One snapshot file, overwritten atomically on each save.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string path) : path_(std::move(path)) {}

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Atomically replaces the snapshot on disk. Returns false on I/O
  /// failure (the previous snapshot, if any, survives).
  bool save(std::uint64_t log_records, BytesView payload);

  /// Loads and verifies the snapshot. Returns nullopt if the file is
  /// missing, malformed, torn, or its recomputed chunk-tree root does
  /// not match the stored one (the last two bump `rejects`).
  std::optional<SnapshotImage> load();

  /// Snapshots successfully written through this handle.
  std::uint64_t saves() const { return saves_; }
  /// Loads that found a file but refused it (integrity or framing).
  std::uint64_t rejects() const { return rejects_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t saves_ = 0;
  std::uint64_t rejects_ = 0;
};

}  // namespace faust::storage
