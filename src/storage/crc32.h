// CRC-32 (IEEE 802.3 polynomial, reflected), for framing log records.
// Detects torn/corrupted tail records after a crash; NOT a substitute for
// the protocol's cryptographic integrity (the server is untrusted anyway —
// this only protects the server operator from its own disks).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace faust::storage {

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor, reflected polynomial
/// 0xEDB88320 — the zlib/Ethernet convention).
std::uint32_t crc32(BytesView data);

}  // namespace faust::storage
