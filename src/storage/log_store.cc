#include "storage/log_store.h"

#include <cstring>

#include "storage/crc32.h"

namespace faust::storage {
namespace {

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

void write_u32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::uint32_t kMaxRecord = 64u << 20;  // 64 MiB sanity cap

}  // namespace

LogStore::LogStore(std::string path) : path_(std::move(path)) {
  // "a+b" creates if missing; reads allowed anywhere, writes append.
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ != nullptr) {
    std::fseek(file_, 0, SEEK_END);
    append_offset_ = std::ftell(file_);
  }
}

LogStore::~LogStore() {
  if (file_ != nullptr) std::fclose(file_);
}

bool LogStore::append(BytesView payload) {
  if (file_ == nullptr || payload.size() > kMaxRecord) return false;
  std::uint8_t header[8];
  write_u32_le(header, static_cast<std::uint32_t>(payload.size()));
  write_u32_le(header + 4, crc32(payload));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) return false;
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return false;
  }
  if (std::fflush(file_) != 0) return false;
  append_offset_ += static_cast<long>(sizeof(header) + payload.size());
  ++records_;
  return true;
}

std::size_t LogStore::replay(const std::function<void(BytesView)>& fn,
                             std::size_t skip_records) {
  if (file_ == nullptr) return 0;
  std::fseek(file_, 0, SEEK_SET);
  std::size_t delivered = 0;
  std::size_t seen = 0;
  long offset = 0;
  Bytes payload;
  for (;;) {
    std::uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) break;
    const std::uint32_t len = read_u32_le(header);
    const std::uint32_t crc = read_u32_le(header + 4);
    if (len > kMaxRecord) {
      // An impossible length is framing corruption, not a short write.
      ++checksum_failures_;
      break;
    }
    payload.resize(len);
    if (len > 0 && std::fread(payload.data(), 1, len, file_) != len) break;  // torn tail
    if (crc32(payload) != crc) {  // corrupt record: stop here
      ++checksum_failures_;
      break;
    }
    if (seen >= skip_records) {
      fn(payload);
      ++delivered;
    }
    ++seen;
    ++records_;
    offset += static_cast<long>(sizeof(header) + len);
  }
  append_offset_ = offset;
  // Position the write head after the intact prefix; "a+b" appends at the
  // physical end, so a torn tail must be cut off explicitly.
  std::fseek(file_, 0, SEEK_END);
  const long physical_end = std::ftell(file_);
  if (physical_end != append_offset_) {
    truncated_bytes_ += static_cast<std::uint64_t>(physical_end - append_offset_);
    // Reopen truncated to the intact prefix.
    std::fclose(file_);
    std::FILE* rw = std::fopen(path_.c_str(), "r+b");
    if (rw != nullptr) {
      // Copy the intact prefix into memory, rewrite the file.
      Bytes intact(static_cast<std::size_t>(append_offset_));
      std::fseek(rw, 0, SEEK_SET);
      const std::size_t got = std::fread(intact.data(), 1, intact.size(), rw);
      std::fclose(rw);
      std::FILE* trunc = std::fopen(path_.c_str(), "wb");
      if (trunc != nullptr) {
        if (got > 0) std::fwrite(intact.data(), 1, got, trunc);
        std::fflush(trunc);
        std::fclose(trunc);
      }
    }
    file_ = std::fopen(path_.c_str(), "a+b");
  } else {
    std::fseek(file_, 0, SEEK_END);
  }
  return delivered;
}

}  // namespace faust::storage
