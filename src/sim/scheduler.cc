#include "sim/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace faust::sim {

EventId Scheduler::after(Time delay, Task task) { return at(now_ + delay, std::move(task)); }

EventId Scheduler::at(Time when, Task task) {
  when = std::max(when, now_);  // Executor contract: the past runs ASAP
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(task)});
  alive_.insert(id);
  return id;
}

void Scheduler::cancel(EventId id) {
  // Cancelling an already-run (or never-issued) id is a harmless no-op.
  if (alive_.erase(id) > 0) cancelled_.insert(id);
}

bool Scheduler::pop_runnable(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the task must be moved out, which is
    // safe because we pop immediately afterwards.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.when, top.seq, top.id, std::move(top.task)};
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Event ev;
  if (!pop_runnable(ev)) return false;
  FAUST_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  alive_.erase(ev.id);
  ev.task();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Scheduler::run_while(const std::function<bool()>& keep_going,
                                 std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && keep_going() && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t n = 0;
  Event ev;
  while (!queue_.empty()) {
    // Peek: drop cancelled entries lazily so the deadline check sees a
    // live event.
    if (cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (!pop_runnable(ev)) break;
    now_ = ev.when;
    ++executed_;
    ++n;
    alive_.erase(ev.id);
    ev.task();
  }
  if (deadline > now_) now_ = deadline;
  return n;
}

}  // namespace faust::sim
