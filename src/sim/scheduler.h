// Discrete-event simulation core.
//
// The paper's system model (§2) is an asynchronous network: messages take
// arbitrary finite time, there is no global clock the protocol can rely
// on.  We realize that model with a deterministic event-driven scheduler:
// every message delivery and every timer is an event with a virtual
// timestamp; a seed plus the program fully determine the execution
// (DESIGN.md, decision D1).
//
// Virtual time is in abstract "ticks"; the examples interpret a tick as a
// microsecond but nothing depends on that.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include "exec/executor.h"

namespace faust::sim {

/// Virtual time, in ticks since the start of the run (the executor seam's
/// abstract ticks — one and the same type).
using Time = exec::Time;

/// Handle for cancelling a scheduled event.
using EventId = exec::EventId;

/// Deterministic event loop over virtual time; the exec::Executor
/// implementation used by everything that must replay bit-identically.
///
/// Events scheduled for the same tick run in schedule order (FIFO), which
/// keeps executions reproducible without a tie-breaking RNG.
///
/// Single-threaded: all member calls (including those of the Executor
/// interface) must come from the one thread that steps the loop.
class Scheduler final : public exec::Executor {
 public:
  using Task = exec::Executor::Task;

  /// Current virtual time. Starts at 0.
  Time now() const override { return now_; }

  /// Schedules `task` to run `delay` ticks from now. Returns an id usable
  /// with `cancel`.
  EventId after(Time delay, Task task) override;

  /// Schedules `task` at absolute virtual time `when` (>= now()).
  EventId at(Time when, Task task) override;

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id) override;

  /// Runs the next pending event, advancing virtual time to it.
  /// Returns false if no events are pending.
  bool step();

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= `deadline`; afterwards now() ==
  /// max(now(), deadline) even if later events remain queued. Returns the
  /// number of events executed.
  std::size_t run_until(Time deadline);

  /// Runs events while `keep_going()` returns true, up to `max_events`.
  /// The predicate is evaluated before every step, so a harness can drive
  /// "until this callback fired" without hand-rolling the loop (the
  /// sharded deployments co-scheduled on one Scheduler all advance
  /// together). Returns the number of events executed.
  std::size_t run_while(const std::function<bool()>& keep_going,
                        std::size_t max_events = SIZE_MAX);

  /// Number of live (non-cancelled, not yet executed) events.
  std::size_t pending() const { return alive_.size(); }

  /// Total events executed since construction (for diagnostics).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-breaker: schedule order
    EventId id;
    // priority_queue is a max-heap; invert the comparison for
    // earliest-first, FIFO within a tick.
    bool operator<(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
    Task task;  // moved out at pop time
  };

  /// Pops events until a non-cancelled one is found; returns false when
  /// the queue is exhausted.
  bool pop_runnable(Event& out);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event> queue_;
  std::unordered_set<EventId> alive_;      // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled but still in queue_
};

}  // namespace faust::sim
