// A real (non-simulated) exec::Executor: one OS thread owning a
// monotonic-clock timer wheel and a run-ASAP task queue.
//
// This is the execution substrate of the threaded shard mode
// (ShardedCluster ExecMode::kThreaded): each shard's whole deployment —
// network fabric, mailbox, server, FaustClients and their timers — is
// bound to one ThreadedRuntime, so every event of that shard runs on that
// shard's thread. Per-node handler serialization (the net::Node contract)
// holds trivially, the single-threaded protocol objects run unchanged,
// and S shards saturate S cores. It is the same move ThreadBus makes for
// message delivery (one thread per mailbox), lifted to the executor seam
// so timers come along.
//
// Time model: deadlines are in abstract ticks, exactly as in
// sim::Scheduler. `tick` configures what a tick means against the
// monotonic clock:
//   * tick == 0 (default): deadlines order execution but cost no real
//     time — the thread drains events in (deadline, schedule order) as
//     fast as it can, advancing its virtual now() to each executed
//     deadline. This is virtual time per runtime: protocol timers (probe
//     intervals, dummy-read periods) keep their relative semantics while
//     wall-clock throughput is limited only by compute.
//   * tick > 0: an event with deadline `when` does not run before
//     start + when*tick on the monotonic clock (timers pace real time).
//
// Thread-safety: now/after/at/cancel/post may be called from any thread;
// tasks run only on the runtime thread, never concurrently. After stop()
// every scheduling call is a harmless no-op, which is what lets protocol
// objects cancel their timers during teardown after the thread is gone.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>

#include "exec/executor.h"

namespace faust::rt {

/// Knobs for a ThreadedRuntime.
struct ThreadedRuntimeConfig {
  /// Real duration of one tick (see file comment). 0 = fast-forward.
  std::chrono::nanoseconds tick{0};
  /// When true the thread starts parked and runs nothing until start():
  /// lets a harness construct a whole deployment (attach nodes, arm
  /// timers) before any event can fire. ShardedCluster relies on this.
  bool start_paused = false;
};

/// Single-threaded executor over the monotonic clock (see file comment).
class ThreadedRuntime final : public exec::Executor {
 public:
  using Time = exec::Time;
  using EventId = exec::EventId;

  explicit ThreadedRuntime(ThreadedRuntimeConfig config = {});
  ~ThreadedRuntime() override;  // stop()s and joins

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  // exec::Executor -----------------------------------------------------

  /// Ticks: the largest deadline executed so far (virtual time, advanced
  /// event by event like the simulator's clock).
  Time now() const override { return now_.load(std::memory_order_acquire); }

  EventId after(Time delay, Task task) override;
  EventId at(Time when, Task task) override;
  void cancel(EventId id) override;

  // Lifecycle ----------------------------------------------------------

  /// Releases a runtime constructed with start_paused. Idempotent.
  void start();

  /// Signals the thread to finish the task in flight, drops everything
  /// still queued, and joins. Idempotent; must not be called from the
  /// runtime thread itself. After stop() the executor accepts and
  /// discards all scheduling calls.
  void stop();

  /// Blocks until the queue is empty and no task is running. Only
  /// meaningful while external posters are quiescent and no task rearms
  /// itself unconditionally (a self-rearming timer never drains).
  void drain();

  /// True when called from the runtime's own thread (tasks may assert
  /// they were marshalled correctly).
  bool on_runtime_thread() const { return std::this_thread::get_id() == thread_id_; }

  /// Tasks executed since construction (diagnostics).
  std::uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-breaker: schedule order
    EventId id;
    // max-heap: invert for earliest-first, FIFO within a deadline.
    bool operator<(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
    mutable Task task;  // moved out at pop time (top() is const)
  };

  void worker_loop();

  const ThreadedRuntimeConfig config_;

  mutable std::mutex mu_;
  // Pacing anchor for tick > 0: tick 0 of the deadline clock. Anchored
  // when the runtime first runs (construction, or start() for a paused
  // runtime) so assembly time under start_paused never counts against
  // deadlines. Guarded by mu_.
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::condition_variable cv_;       // wakes the worker
  std::condition_variable idle_cv_;  // wakes drain()
  std::priority_queue<Event> queue_;
  std::unordered_set<EventId> alive_;      // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled but still in queue_
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  bool paused_;
  bool stopping_ = false;
  bool busy_ = false;  // a task is running

  std::atomic<Time> now_{0};
  std::atomic<std::uint64_t> executed_{0};

  std::thread worker_;
  std::thread::id thread_id_;
};

}  // namespace faust::rt
