// A real (non-simulated) in-process transport: every node gets its own
// delivery thread and a FIFO mailbox protected by a mutex.
//
// This is the proof of DESIGN.md decision D2: the USTOR client and server
// are pure state machines against net::Transport, so the exact objects
// that run under the deterministic simulator also run under genuine
// preemptive concurrency — rt_test drives a full multi-threaded USTOR
// deployment and checks the resulting history with the same
// linearizability checker.
//
// Delivery guarantees match the paper's model: reliable, FIFO per
// (sender, receiver) pair, and per-node handler serialization (a node's
// on_message calls never overlap, since one thread drains its mailbox).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/network.h"  // net::ChannelStats, bucket layout shared with Network
#include "net/transport.h"

namespace faust::rt {

/// Multi-threaded message bus implementing net::Transport.
///
/// Usage: attach nodes, exchange traffic, then destroy (or stop());
/// destruction joins all delivery threads after draining is abandoned.
///
/// Attach/detach are safe at any point, including while traffic is
/// already flowing from other threads: the node table is mutated under a
/// lock, a message sent before its destination attaches is dropped
/// (exactly like a send to an unknown node), and a box stays alive —
/// shared ownership — until every in-flight send() that resolved it has
/// let go, so detach never frees state under a concurrent sender.
/// Re-attaching a live id is a usage error and fails loudly
/// (FAUST_CHECK), as does attaching after stop().
class ThreadBus : public net::Transport {
 public:
  ThreadBus() = default;
  ~ThreadBus() override { stop(); }

  ThreadBus(const ThreadBus&) = delete;
  ThreadBus& operator=(const ThreadBus&) = delete;

  void attach(NodeId id, net::Node& node) override;
  void detach(NodeId id) override;
  void send(NodeId from, NodeId to, Bytes msg) override;

  /// Signals all delivery threads to finish their current message and
  /// exit, then joins them. Idempotent. Undelivered messages are dropped
  /// (call drain() first if that matters).
  void stop();

  /// Blocks until every mailbox is empty and every handler returned.
  /// Only meaningful while senders are quiescent.
  void drain();

  /// Messages delivered so far (all nodes).
  std::uint64_t delivered() const;

  /// Aggregate traffic counters, bucketed by leading wire tag exactly like
  /// net::Network (bucket 0 collects empty messages and out-of-range tags).
  net::ChannelStats total() const;
  net::Network::TypeStats total_by_type() const;
  net::ChannelStats total_for(std::uint8_t tag) const;

  /// Per-(from,to) directed-channel counters, mirroring net::Network's
  /// channel()/channel_for() so byte accounting (e.g. cache-on/off
  /// comparisons) works identically in threaded mode. Counted at send
  /// time, like the aggregates; a message to an unknown node is not
  /// counted (it was never accepted by any channel).
  net::ChannelStats channel(NodeId from, NodeId to) const;
  net::ChannelStats channel_for(NodeId from, NodeId to, std::uint8_t tag) const;

 private:
  struct Box {
    net::Node* node = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<NodeId, Bytes>> queue;
    bool stopping = false;
    bool busy = false;  // handler currently running
    std::thread worker;
  };

  void worker_loop(Box& box);

  mutable std::mutex boxes_mu_;  // guards the map structure only
  // shared_ptr: a sender that resolved a box keeps it alive across the
  // enqueue even if the node detaches concurrently (see class comment).
  std::unordered_map<NodeId, std::shared_ptr<Box>> boxes_;
  std::atomic<std::uint64_t> delivered_{0};
  bool stopped_ = false;

  struct ChannelCounters {
    net::ChannelStats stats;
    net::Network::TypeStats by_type{};
  };

  mutable std::mutex stats_mu_;  // guards the traffic counters
  net::ChannelStats total_;
  net::Network::TypeStats total_by_type_{};
  std::map<std::pair<NodeId, NodeId>, ChannelCounters> channels_;
};

}  // namespace faust::rt
