#include "rt/threaded_runtime.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace faust::rt {

ThreadedRuntime::ThreadedRuntime(ThreadedRuntimeConfig config)
    : config_(config), paused_(config.start_paused) {
  worker_ = std::thread([this] { worker_loop(); });
  thread_id_ = worker_.get_id();
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

exec::EventId ThreadedRuntime::after(Time delay, Task task) {
  std::lock_guard lock(mu_);
  if (stopping_) return 0;
  // From the runtime thread, now_ is the deadline of the executing event,
  // so relative timers compose exactly as in the simulator; from outside,
  // it is the latest executed deadline — "delay from current progress".
  const Time when = now_.load(std::memory_order_relaxed) + delay;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(task)});
  alive_.insert(id);
  cv_.notify_one();
  return id;
}

exec::EventId ThreadedRuntime::at(Time when, Task task) {
  std::lock_guard lock(mu_);
  if (stopping_) return 0;
  when = std::max(when, now_.load(std::memory_order_relaxed));
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(task)});
  alive_.insert(id);
  cv_.notify_one();
  return id;
}

void ThreadedRuntime::cancel(EventId id) {
  if (id == 0) return;
  std::lock_guard lock(mu_);
  if (stopping_) return;
  // Lazy cancellation, as in the simulator: the tombstone is reclaimed
  // when the entry reaches the front of the queue. The alive_ guard keeps
  // cancels of already-run (or already-cancelled) ids — e.g. a timer task
  // cancelling its own event id — from leaking permanent tombstones.
  if (alive_.erase(id) > 0) cancelled_.insert(id);
}

void ThreadedRuntime::start() {
  std::lock_guard lock(mu_);
  if (paused_) start_ = std::chrono::steady_clock::now();  // re-anchor pacing
  paused_ = false;
  cv_.notify_all();
}

void ThreadedRuntime::stop() {
  FAUST_CHECK(!on_runtime_thread());  // joining yourself deadlocks
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard lock(mu_);
  while (!queue_.empty()) queue_.pop();  // undelivered events are dropped
  alive_.clear();
  cancelled_.clear();
  idle_cv_.notify_all();
}

void ThreadedRuntime::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return stopping_ || (queue_.empty() && !busy_); });
}

void ThreadedRuntime::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (paused_ || queue_.empty()) {
      idle_cv_.notify_all();
      cv_.wait(lock, [this] { return stopping_ || (!paused_ && !queue_.empty()); });
      continue;
    }
    if (cancelled_.erase(queue_.top().id) > 0) {
      queue_.pop();
      continue;
    }
    if (config_.tick.count() > 0) {
      // Pace against the monotonic clock. A newly scheduled earlier event
      // or stop() notifies cv_, so the wait re-evaluates with the new
      // front of the queue.
      const auto due = start_ + queue_.top().when * config_.tick;
      if (std::chrono::steady_clock::now() < due) {
        cv_.wait_until(lock, due);
        continue;
      }
    }
    Event ev{queue_.top().when, queue_.top().seq, queue_.top().id,
             std::move(queue_.top().task)};
    queue_.pop();
    alive_.erase(ev.id);
    // Sole writer of now_: inserts clamp to >= now_, so popped deadlines
    // are non-decreasing and a plain store keeps it monotonic.
    if (ev.when > now_.load(std::memory_order_relaxed)) {
      now_.store(ev.when, std::memory_order_release);
    }
    busy_ = true;
    lock.unlock();
    ev.task();  // may re-enter after/at/cancel
    ev.task = nullptr;  // release captures outside the lock
    executed_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    busy_ = false;
  }
}

}  // namespace faust::rt
