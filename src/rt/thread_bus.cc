#include "rt/thread_bus.h"

#include <utility>

#include "common/check.h"

namespace faust::rt {

void ThreadBus::attach(NodeId id, net::Node& node) {
  std::lock_guard lock(boxes_mu_);
  FAUST_CHECK(!stopped_);
  auto [it, inserted] = boxes_.try_emplace(id, std::make_shared<Box>());
  FAUST_CHECK(inserted);  // re-attach under threads would race; fail loudly
  Box& box = *it->second;
  // The box becomes visible to senders the moment boxes_mu_ is released,
  // never earlier: a send() racing this attach either misses the map
  // entry (message dropped, as for any unknown node) or finds a fully
  // initialized box. Setting `node` before the worker starts keeps the
  // worker's first delivery safe.
  box.node = &node;
  box.worker = std::thread([this, &box] { worker_loop(box); });
}

void ThreadBus::detach(NodeId id) {
  std::shared_ptr<Box> box;
  {
    std::lock_guard lock(boxes_mu_);
    auto it = boxes_.find(id);
    if (it == boxes_.end()) return;
    box = std::move(it->second);
    boxes_.erase(it);
  }
  {
    std::lock_guard lock(box->mu);
    box->stopping = true;
  }
  box->cv.notify_all();
  if (box->worker.joinable()) box->worker.join();
}

void ThreadBus::send(NodeId from, NodeId to, Bytes msg) {
  std::shared_ptr<Box> box;
  {
    std::lock_guard lock(boxes_mu_);
    auto it = boxes_.find(to);
    if (it == boxes_.end()) return;  // unknown destination: dropped
    box = it->second;
  }
  {
    std::lock_guard lock(stats_mu_);
    const std::size_t bucket =
        msg.empty() ? 0
                    : (msg[0] < net::Network::kTypeBuckets ? msg[0] : std::size_t{0});
    total_.messages += 1;
    total_.bytes += msg.size();
    total_by_type_[bucket].messages += 1;
    total_by_type_[bucket].bytes += msg.size();
    ChannelCounters& ch = channels_[{from, to}];
    ch.stats.messages += 1;
    ch.stats.bytes += msg.size();
    ch.by_type[bucket].messages += 1;
    ch.by_type[bucket].bytes += msg.size();
  }
  // The shared_ptr keeps the box alive across the enqueue even if the
  // node detaches (and its worker joins) concurrently; a box marked
  // stopping simply drops the message, matching the unknown-destination
  // case.
  {
    std::lock_guard lock(box->mu);
    if (box->stopping) return;
    box->queue.emplace_back(from, std::move(msg));
  }
  box->cv.notify_one();
}

void ThreadBus::worker_loop(Box& box) {
  std::unique_lock lock(box.mu);
  for (;;) {
    box.cv.wait(lock, [&] { return box.stopping || !box.queue.empty(); });
    if (box.stopping) return;
    auto [from, msg] = std::move(box.queue.front());
    box.queue.pop_front();
    box.busy = true;
    lock.unlock();
    box.node->on_message(from, msg);  // may call send() re-entrantly
    delivered_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    box.busy = false;
    box.cv.notify_all();  // wake drain()
  }
}

void ThreadBus::stop() {
  std::unordered_map<NodeId, std::shared_ptr<Box>> boxes;
  {
    std::lock_guard lock(boxes_mu_);
    if (stopped_) return;
    stopped_ = true;
    boxes.swap(boxes_);
  }
  for (auto& [id, box] : boxes) {
    {
      std::lock_guard lock(box->mu);
      box->stopping = true;
    }
    box->cv.notify_all();
  }
  for (auto& [id, box] : boxes) {
    if (box->worker.joinable()) box->worker.join();
  }
}

void ThreadBus::drain() {
  for (;;) {
    bool all_idle = true;
    {
      std::lock_guard lock(boxes_mu_);
      for (auto& [id, box] : boxes_) {
        std::unique_lock bl(box->mu);
        if (!box->queue.empty() || box->busy) {
          all_idle = false;
          break;
        }
      }
    }
    if (all_idle) return;
    std::this_thread::yield();
  }
}

std::uint64_t ThreadBus::delivered() const {
  return delivered_.load(std::memory_order_relaxed);
}

net::ChannelStats ThreadBus::total() const {
  std::lock_guard lock(stats_mu_);
  return total_;
}

net::Network::TypeStats ThreadBus::total_by_type() const {
  std::lock_guard lock(stats_mu_);
  return total_by_type_;
}

net::ChannelStats ThreadBus::total_for(std::uint8_t tag) const {
  std::lock_guard lock(stats_mu_);
  return total_by_type_[tag < net::Network::kTypeBuckets ? tag : 0];
}

net::ChannelStats ThreadBus::channel(NodeId from, NodeId to) const {
  std::lock_guard lock(stats_mu_);
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? net::ChannelStats{} : it->second.stats;
}

net::ChannelStats ThreadBus::channel_for(NodeId from, NodeId to, std::uint8_t tag) const {
  std::lock_guard lock(stats_mu_);
  const auto it = channels_.find({from, to});
  if (it == channels_.end()) return {};
  return it->second.by_type[tag < net::Network::kTypeBuckets ? tag : 0];
}

}  // namespace faust::rt
