#include "shard/shard_router.h"

#include "common/check.h"

namespace faust::shard {
namespace {

// FNV-1a over the key bytes; cheap and good enough as a rendezvous input
// once finalized through splitmix64 (routing is placement, not crypto: a
// client choosing its own keys only skews its own shard load).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shards, std::uint64_t seed) {
  FAUST_CHECK(shards >= 1);
  tags_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tags_.push_back(splitmix64(seed ^ (0x51a2d0c4b3e6f795ULL + s)));
  }
}

std::uint64_t ShardRouter::score(std::size_t shard, std::string_view key) const {
  return splitmix64(fnv1a(key) ^ tags_[shard]);
}

std::size_t ShardRouter::shard_of(std::string_view key) const {
  const std::uint64_t kh = fnv1a(key);
  std::size_t best = 0;
  std::uint64_t best_score = splitmix64(kh ^ tags_[0]);
  for (std::size_t s = 1; s < tags_.size(); ++s) {
    const std::uint64_t sc = splitmix64(kh ^ tags_[s]);
    if (sc > best_score) {
      best_score = sc;
      best = s;
    }
  }
  return best;
}

}  // namespace faust::shard
