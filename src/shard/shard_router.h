// Key → shard placement for the sharded KV service.
//
// Rendezvous (highest-random-weight) hashing: every shard gets a seeded
// 64-bit tag; a key lands on the shard maximizing a mixed hash of
// (key, tag). Compared to modulo placement this keeps the map minimally
// disruptive — growing from S to S+1 shards moves only the keys whose new
// maximum is the new shard (≈ 1/(S+1) of them), everything else stays
// put — which is what makes rebalancing a live deployment tractable
// (key-access locality per Jain, DEC-TR-592, makes moved keys re-warm
// their per-shard caches quickly).
//
// Routing is pure computation over the key bytes: every client and every
// test computes the same placement with no coordination, so the sharded
// client and the differential oracle can be compared key-for-key.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace faust::shard {

class ShardRouter {
 public:
  /// `shards` >= 1. `seed` perturbs the whole placement (deployments with
  /// different seeds shard differently; all parties of one deployment must
  /// share the seed).
  explicit ShardRouter(std::size_t shards, std::uint64_t seed = 0);

  std::size_t shards() const { return tags_.size(); }

  /// Home shard of `key` — argmax over score(s, key), ties to the lower
  /// index (can't happen unless the mixer collides, but keeps the map
  /// total and deterministic regardless).
  std::size_t shard_of(std::string_view key) const;

  /// The rendezvous weight of `key` on `shard` (exposed for tests).
  std::uint64_t score(std::size_t shard, std::string_view key) const;

 private:
  std::vector<std::uint64_t> tags_;
};

}  // namespace faust::shard
