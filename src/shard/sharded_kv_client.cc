#include "shard/sharded_kv_client.h"

#include <utility>

#include "common/check.h"

namespace faust::shard {

ShardedKvClient::ShardedKvClient(ShardedCluster& deployment, ClientId id)
    : deployment_(deployment), id_(id) {
  const std::size_t s_count = deployment_.shards();
  kv_.reserve(s_count);
  pending_.resize(s_count);
  chained_on_fail_.reserve(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    FaustClient& f = deployment_.shard(s).client(id_);
    kv_.push_back(std::make_unique<kv::KvClient>(f));
    // Surface the shard's fail_i through the sharded client, preserving
    // any handler the harness installed before us, and flush the ops the
    // halted FaustClient would otherwise leave dangling.
    chained_on_fail_.push_back(f.on_fail);
    auto prev = f.on_fail;
    f.on_fail = [this, s, prev = std::move(prev)](FailureReason reason) {
      if (prev) prev(reason);
      settle_failed_shard(s);
      if (on_fail) on_fail(s, reason);
    };
  }
}

void ShardedKvClient::settle_failed_shard(std::size_t s) {
  // Detach first: an abort thunk may issue follow-up ops (which now take
  // the failed-shard fast path) or erase itself via the normal-completion
  // guard; neither may disturb this iteration.
  auto aborts = std::move(pending_[s]);
  pending_[s].clear();
  for (auto& [id, abort] : aborts) abort();
}

ShardedKvClient::~ShardedKvClient() {
  // Settle whatever is still in flight: copies of each op's completion
  // lambda remain queued inside the deployment's callback chains and
  // capture `this`. Firing the abort path flips the ticket's fired flag,
  // so a delivery arriving after destruction returns before touching the
  // dead object (the shared flag outlives us by value capture).
  for (std::size_t s = 0; s < kv_.size(); ++s) settle_failed_shard(s);
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    deployment_.shard(s).client(id_).on_fail = std::move(chained_on_fail_[s]);
  }
}

void ShardedKvClient::put(std::string key, std::string value, PutHandler done) {
  const std::size_t s = home_shard(key);
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    // fail_i halted the home shard: the write cannot take effect. Report
    // completion-with-timestamp-0 (the Cluster::write convention) rather
    // than leaving the caller waiting on a halted client.
    if (done) done(0);
    return;
  }
  // The shard can also fail *mid-operation* (the halted FaustClient drops
  // its callbacks); the pending_ ticket lets settle_failed_shard complete
  // the op with t=0, and the fired flag keeps the two paths idempotent.
  const std::uint64_t id = ++next_op_;
  auto fired = std::make_shared<bool>(false);
  PutHandler complete = [this, s, id, fired, done = std::move(done)](Timestamp t) {
    if (*fired) return;
    *fired = true;
    pending_[s].erase(id);
    if (done) done(t);
  };
  pending_[s].emplace(id, [complete] { complete(0); });
  kv.advance_seq(seq_);  // oracle-aligned (see header)
  kv.put(std::move(key), std::move(value), std::move(complete));
  seq_ = kv.put_seq();
}

void ShardedKvClient::erase(const std::string& key, PutHandler done) {
  const std::size_t s = home_shard(key);
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    if (done) done(0);
    return;
  }
  const std::uint64_t id = ++next_op_;
  auto fired = std::make_shared<bool>(false);
  PutHandler complete = [this, s, id, fired, done = std::move(done)](Timestamp t) {
    if (*fired) return;
    *fired = true;
    pending_[s].erase(id);
    if (done) done(t);
  };
  pending_[s].emplace(id, [complete] { complete(0); });
  kv.advance_seq(seq_);
  kv.erase(key, std::move(complete));
  seq_ = kv.put_seq();
}

void ShardedKvClient::get(const std::string& key, GetHandler done) {
  const std::size_t s = home_shard(key);
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    ShardedGetResult r;
    r.shard = s;
    r.shard_failed = true;
    done(r);
    return;
  }
  const std::uint64_t id = ++next_op_;
  auto fired = std::make_shared<bool>(false);
  auto complete = [this, s, id, fired,
                   done = std::move(done)](const ShardedGetResult& r) {
    if (*fired) return;
    *fired = true;
    pending_[s].erase(id);
    done(r);
  };
  pending_[s].emplace(id, [s, complete] {
    ShardedGetResult r;
    r.shard = s;
    r.shard_failed = true;
    complete(r);
  });
  kv.get(key, [&kv, s, complete](std::optional<kv::KvEntry> e) {
    ShardedGetResult r;
    r.entry = std::move(e);
    r.shard = s;
    r.read_ts = kv.last_snapshot_ts();
    r.shard_failed = kv.faust().failed();
    complete(r);
  });
}

void ShardedKvClient::list(ListHandler done) {
  auto fan = std::make_shared<Fan>();
  fan->result.complete = true;
  fan->done = std::move(done);
  // Count the live shards before issuing anything, so an early synchronous
  // completion cannot fire the handler while later shards are still being
  // dispatched.
  std::vector<std::size_t> live;
  live.reserve(kv_.size());
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    if (kv_[s]->faust().failed()) {
      fan->result.complete = false;
    } else {
      live.push_back(s);
    }
  }
  fan->waiting = live.size();
  if (live.empty()) {
    fan->done(fan->result);
    return;
  }
  for (const std::size_t s : live) {
    const std::uint64_t id = ++next_op_;
    auto fired = std::make_shared<bool>(false);
    // ok=false: the shard failed mid-list — its keys are missing, but the
    // healthy shards' results must still be delivered.
    auto finish = [this, s, id, fired, fan](bool ok,
                                            const std::map<std::string, kv::KvEntry>* m) {
      if (*fired) return;
      *fired = true;
      pending_[s].erase(id);
      if (ok) {
        for (const auto& [key, entry] : *m) {
          // Home-shard filter: a key can only leak into a foreign shard's
          // registers under a misbehaving party; it must not shadow (or
          // resurrect) the home shard's authoritative entry.
          if (home_shard(key) == s) fan->result.entries[key] = entry;
        }
      } else {
        fan->result.complete = false;
      }
      if (--fan->waiting == 0) fan->done(fan->result);
    };
    pending_[s].emplace(id, [finish] { finish(false, nullptr); });
    kv_[s]->list([finish](const std::map<std::string, kv::KvEntry>& m) { finish(true, &m); });
  }
}

bool ShardedKvClient::any_shard_failed() const {
  for (const auto& kv : kv_) {
    if (kv->faust().failed()) return true;
  }
  return false;
}

std::vector<std::size_t> ShardedKvClient::failed_shards() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    if (kv_[s]->faust().failed()) out.push_back(s);
  }
  return out;
}

bool ShardedKvClient::stable(const ShardedGetResult& r) const {
  if (r.shard_failed || r.read_ts == 0) return false;
  return shard_stable_ts(r.shard) >= r.read_ts;
}

Timestamp ShardedKvClient::shard_stable_ts(std::size_t s) const {
  FAUST_CHECK(s < kv_.size());
  return kv_[s]->faust().fully_stable_timestamp();
}

}  // namespace faust::shard
