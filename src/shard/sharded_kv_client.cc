#include "shard/sharded_kv_client.h"

#include <atomic>
#include <thread>
#include <utility>

#include "common/check.h"

namespace faust::shard {

ShardedKvClient::ShardedKvClient(ShardedCluster& deployment, ClientId id, kv::KvTuning tuning)
    : deployment_(deployment), id_(id) {
  const std::size_t s_count = deployment_.shards();
  cache_.resize(s_count);
  kv_.reserve(s_count);
  pending_.resize(s_count);
  chained_on_fail_.resize(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    kv_.push_back(std::make_unique<kv::KvClient>(deployment_.shard(s).client(id_), tuning));
  }
  // D8: wire the per-shard edge-cache hop. Construction attaches to the
  // shard's network, which (like the fail-hook swap below) may only be
  // touched from the shard's own thread; a stopped runtime simply leaves
  // the shard uncached.
  for (std::size_t s = 0; s < s_count; ++s) {
    Cluster& shard = deployment_.shard(s);
    if (!shard.cache_options().enabled) continue;
    const bool made = dispatch_sync(s, [this, s, &shard] {
      cache_[s] = std::make_unique<cache::CacheClient>(
          id_, cache::kCacheNodeId, shard.n(), shard.sigs(),
          shard.client(id_).config().data_digest, shard.transport(), deployment_.shard_exec(s),
          shard.cache_options().lookup_timeout);
    });
    if (made) kv_[s]->attach_cache(cache_[s].get());
  }
  // Surface each shard's fail_i through the sharded client, preserving
  // any handler the harness installed before us, and flush the ops the
  // halted FaustClient would otherwise leave dangling. The handler swap
  // mutates FaustClient state, so it runs on the shard's own thread; if
  // a shard's runtime is already stopped the swap never happens and the
  // destructor must not "restore" anything there.
  hooked_.assign(s_count, false);
  for (std::size_t s = 0; s < s_count; ++s) {
    hooked_[s] = dispatch_sync(s, [this, s] {
      FaustClient& f = deployment_.shard(s).client(id_);
      chained_on_fail_[s] = f.on_fail;
      auto prev = f.on_fail;
      f.on_fail = [this, s, prev = std::move(prev)](FailureReason reason) {
        if (prev) prev(reason);
        settle_failed_shard(s);
        if (on_fail) on_fail(s, reason);
      };
    });
  }
}

ShardedKvClient::~ShardedKvClient() {
  // Settle whatever is still in flight: copies of each op's completion
  // lambda remain queued inside the deployment's callback chains and
  // capture `this`. Firing the abort path flips the ticket's fired flag,
  // so a delivery arriving after destruction returns before touching the
  // dead object (the shared flag outlives us by value capture). By the
  // destructor contract the deployment is quiescent (threaded: stopped),
  // so touching the shards inline is safe here.
  for (std::size_t s = 0; s < kv_.size(); ++s) settle_failed_shard(s);
  // Detaching the cache hop and restoring the fail hook both mutate
  // state a live shard runtime reads (message delivery walks the
  // network's node map; fail_i reads the handler), so — exactly like
  // their installation above — they run on the shard's own thread, and
  // only fall back inline once that runtime is stopped.
  for (std::size_t s = 0; s < cache_.size(); ++s) {
    if (cache_[s] == nullptr) continue;
    if (!dispatch_sync(s, [this, s] { cache_[s].reset(); })) cache_[s].reset();
  }
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    if (!hooked_[s]) continue;
    const auto restore = [this, s] {
      deployment_.shard(s).client(id_).on_fail = std::move(chained_on_fail_[s]);
    };
    if (!dispatch_sync(s, restore)) restore();
  }
}

bool ShardedKvClient::dispatch(std::size_t s, std::function<void()> body) {
  if (deployment_.threaded()) {
    return deployment_.shard_exec(s).post(std::move(body)) != 0;
  }
  body();
  return true;
}

bool ShardedKvClient::dispatch_sync(std::size_t s, const std::function<void()>& body) {
  if (!deployment_.threaded()) {
    body();
    return true;
  }
  return exec::post_sync(deployment_.shard_exec(s), body);
}

void ShardedKvClient::settle_failed_shard(std::size_t s) {
  // Detach first: an abort thunk may issue follow-up ops (which now take
  // the failed-shard fast path) or erase itself via the normal-completion
  // guard; neither may disturb this iteration — and the thunks relock
  // mu_, so it cannot be held while they run.
  std::map<std::uint64_t, std::function<void()>> aborts;
  {
    std::lock_guard lock(mu_);
    aborts = std::move(pending_[s]);
    pending_[s].clear();
  }
  for (auto& [id, abort] : aborts) abort();
}

void ShardedKvClient::put(std::string key, std::string value, PutHandler done) {
  const std::size_t s = home_shard(key);
  dispatch(s, [this, s, key = std::move(key), value = std::move(value),
               done = std::move(done)]() mutable {
    put_on_shard(s, std::move(key), std::move(value), std::move(done), /*is_erase=*/false);
  });
}

void ShardedKvClient::erase(const std::string& key, PutHandler done) {
  const std::size_t s = home_shard(key);
  dispatch(s, [this, s, key, done = std::move(done)]() mutable {
    put_on_shard(s, key, {}, std::move(done), /*is_erase=*/true);
  });
}

void ShardedKvClient::put_on_shard(std::size_t s, std::string key, std::string value,
                                   PutHandler done, bool is_erase) {
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    // fail_i halted the home shard: the write cannot take effect. Report
    // completion-with-timestamp-0 (the Cluster::write convention) rather
    // than leaving the caller waiting on a halted client.
    if (done) done(0);
    return;
  }
  if (is_erase && !kv.owns_key(key)) {
    // No-op erase: KvClient will not publish, so drawing a cross-shard
    // sequence ticket here would desynchronize the counters from the
    // single-deployment oracle (which does not bump either).
    if (done) done(0);
    return;
  }
  // The shard can also fail *mid-operation* (the halted FaustClient drops
  // its callbacks); the pending_ ticket lets settle_failed_shard complete
  // the op with t=0, and the fired flag keeps the two paths idempotent.
  //
  // The ticket's sequence number is drawn from the cross-shard counter up
  // front (oracle alignment, see header): every shard's counter trails
  // seq_, so advance_seq(my_seq - 1) makes this publication use exactly
  // my_seq — without holding mu_ across the encode/sign work below, which
  // is what the threaded mode parallelizes.
  std::uint64_t id, my_seq;
  auto fired = std::make_shared<bool>(false);
  PutHandler complete;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
    my_seq = ++seq_;
    complete = [this, s, id, fired, done = std::move(done)](Timestamp t) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_[s].erase(id);
      }
      if (done) done(t);
    };
    pending_[s].emplace(id, [complete] { complete(0); });
  }
  kv.advance_seq(my_seq - 1);
  if (is_erase) {
    kv.erase(key, std::move(complete));
  } else {
    kv.put(std::move(key), std::move(value), std::move(complete));
  }
}

void ShardedKvClient::get(const std::string& key, GetHandler done) {
  const std::size_t s = home_shard(key);
  dispatch(s, [this, s, key, done = std::move(done)]() mutable {
    get_on_shard(s, key, std::move(done));
  });
}

void ShardedKvClient::get_on_shard(std::size_t s, const std::string& key, GetHandler done) {
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    ShardedGetResult r;
    r.shard = s;
    r.shard_failed = true;
    done(r);
    return;
  }
  std::uint64_t id;
  auto fired = std::make_shared<bool>(false);
  std::function<void(const ShardedGetResult&)> complete;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
    complete = [this, s, id, fired, done = std::move(done)](const ShardedGetResult& r) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_[s].erase(id);
      }
      done(r);
    };
    pending_[s].emplace(id, [s, complete] {
      ShardedGetResult r;
      r.shard = s;
      r.shard_failed = true;
      complete(r);
    });
  }
  kv.get_ex(key, /*bypass_cache=*/false,
            [&kv, s, complete](std::optional<kv::KvEntry> e, Timestamp read_ts,
                               const kv::ReadOrigin& origin) {
              ShardedGetResult r;
              r.entry = std::move(e);
              r.shard = s;
              r.read_ts = read_ts;
              r.shard_failed = kv.faust().failed();
              r.cached = origin.cached;
              r.as_of = origin.as_of;
              complete(r);
            });
}

void ShardedKvClient::list(ListHandler done, bool bypass_cache) {
  auto fan = std::make_shared<Fan>();
  fan->result.complete = true;
  fan->done = std::move(done);
  // Every shard gets a slot before anything is dispatched, so an early
  // completion (a failed shard reports synchronously when inline) cannot
  // fire the handler while later shards are still being dispatched.
  fan->waiting = kv_.size();
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    dispatch(s, [this, s, fan, bypass_cache] { list_on_shard(s, fan, bypass_cache); });
  }
}

void ShardedKvClient::list_on_shard(std::size_t s, const std::shared_ptr<Fan>& fan,
                                    bool bypass_cache) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
  }
  auto fired = std::make_shared<bool>(false);
  // ok=false: the shard failed — its keys are missing, but the healthy
  // shards' results must still be delivered. The fan state is shared
  // across shard threads, so it is folded under mu_; the user handler
  // fires outside the lock, from whichever shard finishes last.
  auto finish = [this, s, id, fired, fan](bool ok,
                                          const std::map<std::string, kv::KvEntry>* m) {
    ListHandler done_now;
    ShardedListResult result_now;
    {
      std::lock_guard lock(mu_);
      if (*fired) return;
      *fired = true;
      pending_[s].erase(id);
      if (ok) {
        for (const auto& [key, entry] : *m) {
          // Home-shard filter: a key can only leak into a foreign shard's
          // registers under a misbehaving party; it must not shadow (or
          // resurrect) the home shard's authoritative entry.
          if (home_shard(key) == s) fan->result.entries[key] = entry;
        }
      } else {
        fan->result.complete = false;
      }
      if (--fan->waiting == 0) {
        done_now = std::move(fan->done);
        result_now = std::move(fan->result);
      }
    }
    if (done_now) done_now(result_now);
  };
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    finish(false, nullptr);
    return;
  }
  {
    std::lock_guard lock(mu_);
    pending_[s].emplace(id, [finish] { finish(false, nullptr); });
  }
  kv.list_ex(bypass_cache, [finish](const std::map<std::string, kv::KvEntry>& m, Timestamp,
                                    const kv::ReadOrigin&) { finish(true, &m); });
}

std::uint64_t ShardedKvClient::draw_seq() {
  std::lock_guard lock(mu_);
  return ++seq_;
}

void ShardedKvClient::apply_on_shard(std::size_t s,
                                     std::vector<kv::KvClient::SeqChange> changes,
                                     MutateHandler done) {
  FAUST_CHECK(s < kv_.size());
  // Arm the pending ticket on the CALLER's thread, before dispatching:
  // if the shard's runtime stops (or its fail_i settles the shard) before
  // the body ever runs, destruction-settling still completes the op.
  std::uint64_t id;
  auto fired = std::make_shared<bool>(false);
  MutateHandler complete;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
    complete = [this, s, id, fired, done = std::move(done)](Timestamp t, bool failed) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_[s].erase(id);
      }
      if (done) done(t, failed);
    };
    pending_[s].emplace(id, [complete] { complete(0, /*failed=*/true); });
  }
  if (!dispatch(s, [this, s, changes = std::move(changes), complete]() mutable {
        mutate_on_shard(s, std::move(changes), std::move(complete));
      })) {
    complete(0, /*failed=*/true);  // runtime stopped: the body never runs
  }
}

void ShardedKvClient::mutate_on_shard(std::size_t s,
                                      std::vector<kv::KvClient::SeqChange> changes,
                                      MutateHandler complete) {
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    complete(0, /*failed=*/true);
    return;
  }
  kv.apply_with_seqs(changes, [complete](Timestamp t) { complete(t, /*failed=*/false); });
}

void ShardedKvClient::snapshot_on_shard(std::size_t s, SnapshotHandler done) {
  FAUST_CHECK(s < kv_.size());
  // Same arm-before-dispatch discipline as apply_on_shard.
  std::uint64_t id;
  auto fired = std::make_shared<bool>(false);
  SnapshotHandler complete;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
    complete = [this, s, id, fired, done = std::move(done)](
                   const std::map<std::string, kv::KvEntry>* m, Timestamp ts,
                   const kv::ReadOrigin& origin) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_[s].erase(id);
      }
      if (done) done(m, ts, origin);
    };
    pending_[s].emplace(id, [complete] { complete(nullptr, 0, kv::ReadOrigin{}); });
  }
  if (!dispatch(s, [this, s, complete]() mutable {
        snapshot_shard(s, std::move(complete));
      })) {
    complete(nullptr, 0, kv::ReadOrigin{});  // runtime stopped: the body never runs
  }
}

void ShardedKvClient::snapshot_shard(std::size_t s, SnapshotHandler complete) {
  kv::KvClient& kv = *kv_[s];
  if (kv.faust().failed()) {
    complete(nullptr, 0, kv::ReadOrigin{});
    return;
  }
  kv.list_ex(/*bypass_cache=*/false,
             [complete](const std::map<std::string, kv::KvEntry>& m, Timestamp ts,
                        const kv::ReadOrigin& origin) { complete(&m, ts, origin); });
}

void ShardedKvClient::snapshot_degraded_on_shard(std::size_t s, SnapshotHandler done) {
  FAUST_CHECK(s < kv_.size());
  // Same arm-before-dispatch discipline as snapshot_on_shard.
  std::uint64_t id;
  auto fired = std::make_shared<bool>(false);
  SnapshotHandler complete;
  {
    std::lock_guard lock(mu_);
    id = ++next_op_;
    complete = [this, s, id, fired, done = std::move(done)](
                   const std::map<std::string, kv::KvEntry>* m, Timestamp ts,
                   const kv::ReadOrigin& origin) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_[s].erase(id);
      }
      if (done) done(m, ts, origin);
    };
    pending_[s].emplace(id, [complete] { complete(nullptr, 0, kv::ReadOrigin{}); });
  }
  if (!dispatch(s, [this, s, complete]() mutable {
        snapshot_degraded_shard(s, std::move(complete));
      })) {
    complete(nullptr, 0, kv::ReadOrigin{});  // runtime stopped: the body never runs
  }
}

void ShardedKvClient::snapshot_degraded_shard(std::size_t s, SnapshotHandler complete) {
  // Deliberately no faust().failed() fast path: the degraded read never
  // touches the (possibly misbehaving, possibly unreachable) shard, and
  // verified-stale cache data is no less authentic after fail_i — it is
  // served flagged, or the whole snapshot settles null.
  kv_[s]->snapshot_degraded(
      [complete](const std::map<std::string, kv::KvEntry>* m, Timestamp ts,
                 const kv::ReadOrigin& origin) { complete(m, ts, origin); });
}

bool ShardedKvClient::any_shard_failed() const {
  for (const auto& kv : kv_) {
    if (kv->faust().failed()) return true;
  }
  return false;
}

std::vector<std::size_t> ShardedKvClient::failed_shards() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < kv_.size(); ++s) {
    if (kv_[s]->faust().failed()) out.push_back(s);
  }
  return out;
}

bool ShardedKvClient::stable(const ShardedGetResult& r) const {
  if (r.shard_failed || r.read_ts == 0) return false;
  return shard_stable_ts(r.shard) >= r.read_ts;
}

Timestamp ShardedKvClient::shard_stable_ts(std::size_t s) const {
  FAUST_CHECK(s < kv_.size());
  return kv_[s]->faust().fully_stable_timestamp();
}

}  // namespace faust::shard
