// ShardedCluster — S independent FAUST deployments co-scheduled on ONE
// sim::Scheduler.
//
// Each shard is a full Cluster (own network, mailbox, signature scheme,
// server, n FaustClients): shards share no protocol state and no trust —
// compromising one shard's server forks at most the keys homed there.
// Running them on a single scheduler keeps multi-shard scenarios
// deterministic: a root seed derives every shard's seed, and event order
// across shards is fixed by the shared virtual clock, so the differential
// tests can replay the same workload against a single-deployment oracle.
//
// The scale-out economics (PERF.md "Sharding"): every per-operation cost
// that grows with the keyspace — partition encode/decode, value hashing
// for DATA signatures, bytes on the wire — shrinks by the shard factor,
// because a client's partition in each shard holds only the keys homed
// there.
#pragma once

#include <memory>
#include <vector>

#include "faust/cluster.h"
#include "shard/shard_router.h"

namespace faust::shard {

/// Knobs for ShardedCluster assembly.
struct ShardedClusterConfig {
  std::size_t shards = 2;
  std::uint64_t seed = 1;        // root seed; each shard's is derived from it
  /// Per-shard template: n, delays and FAUST timers are applied to every
  /// shard; `seed` and `scheduler` in here are overridden.
  ClusterConfig shard_template;
};

/// S co-scheduled deployments plus the routing table over them.
class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config = {});

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  sim::Scheduler& sched() { return sched_; }
  const ShardRouter& router() const { return router_; }
  std::size_t shards() const { return shards_.size(); }

  /// Clients per shard (every client has a register in every shard).
  int n() const { return config_.shard_template.n; }

  Cluster& shard(std::size_t s);
  const Cluster& shard(std::size_t s) const;

  /// Advances virtual time by `d` across every shard.
  void run_for(sim::Time d) { sched_.run_until(sched_.now() + d); }

  /// Drives the shared scheduler until `done` flips or the budget runs
  /// out; returns the final value of `done`.
  bool drive(const bool& done, std::size_t step_budget = 1'000'000);

  /// fail_i fired anywhere / on every client of every shard.
  bool any_failed() const;
  bool all_failed() const;

  /// Aggregate traffic over every shard's fabric.
  net::ChannelStats total_traffic() const;

 private:
  const ShardedClusterConfig config_;
  sim::Scheduler sched_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Cluster>> shards_;
};

}  // namespace faust::shard
