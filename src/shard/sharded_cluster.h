// ShardedCluster — S independent FAUST deployments, co-scheduled on ONE
// sim::Scheduler (kDeterministic) or spread over S runtime threads
// (kThreaded).
//
// Each shard is a full Cluster (own network, mailbox, signature scheme,
// server, n FaustClients): shards share no protocol state and no trust —
// compromising one shard's server forks at most the keys homed there.
//
// Execution modes (the exec::Executor seam makes the shards agnostic):
//
//   * kDeterministic — every shard on a single shared sim::Scheduler. A
//     root seed derives every shard's seed, and event order across shards
//     is fixed by the shared virtual clock, so the differential tests can
//     replay the same workload against a single-deployment oracle,
//     bit-identically.
//   * kThreaded — every shard on its own rt::ThreadedRuntime (one OS
//     thread per shard, owning that shard's delivery drain and timer
//     wheel). Shards share no state, so S shards run on S cores and the
//     per-op savings of sharding (PERF.md) multiply into wall-clock
//     throughput. Executions are NOT deterministic across runs; the
//     differential oracle for this mode checks set-equivalence of the
//     merged views and history linearizability, not event order
//     (tests/shard_threaded_test.cc).
//   * kProcess — the real-socket deployment (DESIGN.md D9). Each shard's
//     SERVER side (durable PersistentServer + optional cache node) runs
//     as a separate OS process (`faust_sockd serve`, managed by
//     sock::ProcessCluster); the shard's CLIENT side stays in this
//     process on its own rt::ThreadedRuntime, riding a
//     sock::SocketTransport that dials the worker over loopback TCP or a
//     Unix socket. kill_shard/restart_shard become real SIGKILL +
//     respawn-with-recovery, composed with transport fencing so queued
//     pre-crash bytes never reach the restarted era. Protocol timers are
//     scaled by ProcessOptions::timer_scale — sim-tick cadences are far
//     too aggressive against real socket latency. process_shards < S
//     gives the mixed milestone: first k shards real processes, the rest
//     ordinary in-process threaded shards.
//
// The scale-out economics (PERF.md "Sharding"): every per-operation cost
// that grows with the keyspace — partition encode/decode, value hashing
// for DATA signatures, bytes on the wire — shrinks by the shard factor,
// because a client's partition in each shard holds only the keys homed
// there.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "faust/cluster.h"
#include "rt/threaded_runtime.h"
#include "shard/shard_router.h"
#include "sock/process_cluster.h"
#include "sock/socket_transport.h"

namespace faust::shard {

/// How the S deployments execute (see file comment).
enum class ExecMode {
  kDeterministic,  // one shared sim::Scheduler, bit-identical replays
  kThreaded,       // one rt::ThreadedRuntime (OS thread) per shard
  kProcess,        // server side in real worker processes, over sockets
};

/// Knobs for ShardedCluster assembly.
struct ShardedClusterConfig {
  std::size_t shards = 2;
  std::uint64_t seed = 1;        // root seed; each shard's is derived from it
  ExecMode mode = ExecMode::kDeterministic;
  /// kThreaded only: real duration of one tick on each shard's runtime
  /// (0 = fast-forward; see rt::ThreadedRuntime).
  std::chrono::nanoseconds tick{0};
  /// Per-shard VerifyCache capacity. 0 = auto: size the template capacity
  /// down to the per-shard working set (PERF.md "Per-shard cache
  /// sizing"), never below kMinVerifyCacheEntries.
  std::size_t verify_cache_entries = 0;
  /// Per-shard template: n, delays and FAUST timers are applied to every
  /// shard; `seed` and `executor` in here are overridden (and
  /// `faust.verify_cache_entries` is re-sized per shard, see above).
  ClusterConfig shard_template;
  /// Non-empty: every shard's server is crash-durable, rooted at
  /// `durability_root`/shard_<s> (directories created as needed), and
  /// kill_shard()/restart_shard() become legal. Overrides any
  /// durability_dir in shard_template; `shard_template.durability`
  /// supplies the snapshot cadence. REQUIRED in kProcess mode (the
  /// workers recover from these directories; UDS listen sockets live
  /// beside them).
  std::string durability_root;
  /// kProcess only: worker binary, TCP vs UDS, tick, timer scale, how
  /// many leading shards run as processes (see sock::ProcessOptions).
  sock::ProcessOptions process;
};

/// S co-scheduled deployments plus the routing table over them.
class ShardedCluster {
 public:
  /// Floor for the auto-sized per-shard VerifyCache: must stay above the
  /// steady-state working set of one shard's deployment — O(n²) signed
  /// versions + O(n) proofs + O(n) data signatures (PERF.md).
  static constexpr std::size_t kMinVerifyCacheEntries = 512;

  explicit ShardedCluster(ShardedClusterConfig config = {});

  /// Threaded mode: stop()s every runtime. Any ShardedKvClient bound to
  /// this deployment must be destroyed (or quiescent) first — see
  /// ShardedKvClient's destructor contract.
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  ExecMode mode() const { return config_.mode; }
  /// True when shards run on their own rt::ThreadedRuntimes (kThreaded
  /// AND kProcess — in process mode the client side of every shard is
  /// still one runtime thread here): cross-thread work must be post()ed,
  /// await() blocks instead of stepping.
  bool threaded() const { return config_.mode != ExecMode::kDeterministic; }

  /// The shared simulation scheduler. Deterministic mode only
  /// (FAUST_CHECKed): a threaded deployment has no central clock.
  sim::Scheduler& sched();

  /// The executor shard `s` runs on: the shared scheduler in
  /// deterministic mode, the shard's own runtime in threaded mode.
  /// Cross-thread work for a shard must be post()ed here.
  exec::Executor& shard_exec(std::size_t s);

  const ShardRouter& router() const { return router_; }
  std::size_t shards() const { return shards_.size(); }

  /// Clients per shard (every client has a register in every shard).
  int n() const { return config_.shard_template.n; }

  /// The effective per-shard VerifyCache capacity after auto-sizing.
  std::size_t verify_cache_entries() const { return verify_cache_entries_; }

  Cluster& shard(std::size_t s);
  const Cluster& shard(std::size_t s) const;

  /// Advances virtual time by `d` across every shard. Deterministic only.
  void run_for(sim::Time d) { sched().run_until(sched().now() + d); }

  /// Drives the shared scheduler until `done` flips or the budget runs
  /// out; returns the final value of `done`. Deterministic only.
  bool drive(const bool& done, std::size_t step_budget = 1'000'000);

  /// Mode-generic completion wait: deterministic — steps the scheduler
  /// until `done` flips (the timeout bounds *events*, one per ~µs as a
  /// rough budget); threaded — blocks this thread until the shard
  /// runtimes flip `done` or the wall-clock timeout expires. Returns the
  /// final value of `done`.
  bool await(const std::atomic<bool>& done,
             std::chrono::milliseconds timeout = std::chrono::seconds(30));

  /// Threaded mode: joins every shard's runtime thread (idempotent,
  /// no-op in deterministic mode). After this the deployment is frozen:
  /// no event will ever run again, and cross-thread reads of shard state
  /// (failure flags, stability cuts, traffic counters) are safe.
  void stop();

  /// True when shards were built with a durability_root.
  bool durable() const { return !config_.durability_root.empty(); }

  /// Transiently crashes shard `s`'s durable server (Cluster::
  /// crash_server). In-flight traffic to/from it is dropped; its WAL and
  /// snapshot stay on disk. Threaded mode: runs ON the shard's runtime
  /// thread (post_sync), so it serializes with that shard's deliveries.
  /// Process shards: fences the worker's NodeIds on the shard transport
  /// FIRST (queued bytes are purged, not flushed later into the restarted
  /// era), then SIGKILLs the worker — no cleanup runs over there.
  void kill_shard(std::size_t s);

  /// Rebuilds shard `s`'s server from disk and reconnects its clients
  /// (Cluster::restart_server); in-flight operations of that shard's
  /// clients resume exactly once. Same threading rule as kill_shard.
  /// Process shards: respawns the worker with a bumped incarnation,
  /// blocks until its READY line (recovery included), unfences the
  /// transport and reconnects the clients on the shard's runtime. Safe
  /// from any thread EXCEPT the shard's own runtime thread (it posts
  /// synchronously onto it) — scenario harnesses use dedicated restarter
  /// threads.
  void restart_shard(std::size_t s);

  /// True while shard `s`'s server is attached (process shards: while the
  /// worker process is up). Threaded mode: call from the shard's thread,
  /// or at quiescence.
  bool shard_up(std::size_t s) const;

  /// True when shard `s`'s server side runs in a worker process.
  bool process_shard(std::size_t s) const;

  /// Shard `s`'s socket transport, or nullptr for non-process shards.
  /// Counter reads (total/channel_for/wire) are any-thread safe.
  sock::SocketTransport* shard_transport(std::size_t s);

  /// The worker process manager, or nullptr outside kProcess mode
  /// (restart/recovery counters for harnesses).
  const sock::ProcessCluster* procs() const { return procs_.get(); }

  /// Gracefully SIGTERMs every process-shard worker and collects its
  /// durability counters (STATS line); index w maps to shard w. nullopt
  /// for a worker that was down or died uncleanly. Call once, after the
  /// workload is quiescent (stop() first is safest); workers not
  /// finalized here are SIGKILLed on destruction without stats.
  std::vector<std::optional<sock::ServerStats>> finalize_processes();

  /// fail_i fired anywhere / on every client of every shard.
  /// Threaded mode: only meaningful at quiescence (or after stop()).
  bool any_failed() const;
  bool all_failed() const;

  /// Aggregate traffic over every shard's fabric. Same caveat.
  net::ChannelStats total_traffic() const;

 private:
  std::size_t process_shard_count() const;

  const ShardedClusterConfig config_;
  std::size_t verify_cache_entries_ = 0;
  sim::Scheduler sched_;  // deterministic mode's shared clock (else idle)
  ShardRouter router_;
  // Declaration order IS the teardown contract (reverse destruction):
  // shards die first (their protocol objects detach from the transports),
  // then the transports (loop threads stop; no more posts), then the
  // runtimes, then the worker processes are reaped. Threads are joined in
  // ~ShardedCluster (stop()) *before* any member teardown, so no event
  // can touch a half-destroyed shard.
  std::unique_ptr<sock::ProcessCluster> procs_;  // kProcess only
  std::vector<std::unique_ptr<rt::ThreadedRuntime>> runtimes_;
  // One per shard; null entries for non-process shards (kProcess mixed
  // deployments) and in the other modes.
  std::vector<std::unique_ptr<sock::SocketTransport>> transports_;
  std::vector<std::unique_ptr<Cluster>> shards_;
};

}  // namespace faust::shard
