#include "shard/sharded_cluster.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "exec/executor.h"

namespace faust::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(config), router_(config.shards, config.seed) {
  FAUST_CHECK(config_.shards >= 1);

  // Per-shard cache sizing (ROADMAP): each shard's caches see only the
  // keys homed there, so the capacity a single deployment needs can be
  // divided by the shard factor without losing hits — but never below
  // the fixed per-deployment working set floor (PERF.md).
  verify_cache_entries_ =
      config_.verify_cache_entries != 0
          ? config_.verify_cache_entries
          : std::max(kMinVerifyCacheEntries,
                     config_.shard_template.faust.verify_cache_entries / config_.shards);

  if (threaded()) {
    // Paused until every shard is fully assembled: an armed FaustClient
    // timer must not fire (and start sending through a shard's network)
    // while later shards — or later clients of the same shard — are
    // still being constructed on this thread.
    runtimes_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      rt::ThreadedRuntimeConfig rc;
      rc.tick = config_.tick;
      rc.start_paused = true;
      runtimes_.push_back(std::make_unique<rt::ThreadedRuntime>(rc));
    }
  }

  Rng root(config_.seed);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ClusterConfig c = config_.shard_template;
    c.seed = root.next_u64();  // independent delays & keys per shard
    c.executor = threaded() ? static_cast<exec::Executor*>(runtimes_[s].get())
                            : static_cast<exec::Executor*>(&sched_);
    c.faust.verify_cache_entries = verify_cache_entries_;
    if (!config_.durability_root.empty()) {
      c.durability_dir = config_.durability_root + "/shard_" + std::to_string(s);
      c.durability = config_.shard_template.durability;
    }
    shards_.push_back(std::make_unique<Cluster>(c));
  }

  for (auto& r : runtimes_) r->start();
}

ShardedCluster::~ShardedCluster() { stop(); }

void ShardedCluster::stop() {
  for (auto& r : runtimes_) r->stop();
}

sim::Scheduler& ShardedCluster::sched() {
  FAUST_CHECK(!threaded());  // a threaded deployment has no central clock
  return sched_;
}

exec::Executor& ShardedCluster::shard_exec(std::size_t s) {
  FAUST_CHECK(s < shards_.size());
  if (threaded()) return *runtimes_[s];
  return sched_;
}

Cluster& ShardedCluster::shard(std::size_t s) {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

const Cluster& ShardedCluster::shard(std::size_t s) const {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

bool ShardedCluster::drive(const bool& done, std::size_t step_budget) {
  sched().run_while([&done] { return !done; }, step_budget);
  return done;
}

bool ShardedCluster::await(const std::atomic<bool>& done, std::chrono::milliseconds timeout) {
  if (!threaded()) {
    // One event per microsecond of budget is far beyond any real rate;
    // the point is a deterministic bound, not wall-clock fidelity.
    const auto budget = static_cast<std::size_t>(timeout.count()) * 1000;
    sched().run_while([&done] { return !done.load(std::memory_order_acquire); }, budget);
    return done.load(std::memory_order_acquire);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Spin-then-sleep: completions are typically microseconds away (the
  // shard threads are compute-bound), so yield a while before backing
  // off to a sleep that caps the polling cost of long waits.
  int spins = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  return true;
}

void ShardedCluster::kill_shard(std::size_t s) {
  FAUST_CHECK(durable());
  Cluster& shard = this->shard(s);
  if (!threaded()) {
    shard.crash_server();
    return;
  }
  // Serialize with the shard's own deliveries: the server object must not
  // be destroyed while its thread is mid-message.
  FAUST_CHECK(exec::post_sync(shard_exec(s), [&shard] { shard.crash_server(); }));
}

void ShardedCluster::restart_shard(std::size_t s) {
  FAUST_CHECK(durable());
  Cluster& shard = this->shard(s);
  if (!threaded()) {
    shard.restart_server();
    return;
  }
  FAUST_CHECK(exec::post_sync(shard_exec(s), [&shard] { shard.restart_server(); }));
}

bool ShardedCluster::shard_up(std::size_t s) const {
  FAUST_CHECK(s < shards_.size());
  return shards_[s]->server_up();
}

bool ShardedCluster::any_failed() const {
  for (const auto& s : shards_) {
    if (s->any_failed()) return true;
  }
  return false;
}

bool ShardedCluster::all_failed() const {
  for (const auto& s : shards_) {
    if (!s->all_failed()) return false;
  }
  return true;
}

net::ChannelStats ShardedCluster::total_traffic() const {
  net::ChannelStats total;
  for (const auto& s : shards_) total += s->net().total();
  return total;
}

}  // namespace faust::shard
