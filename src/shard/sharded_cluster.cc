#include "shard/sharded_cluster.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "cache/cache_wire.h"
#include "common/check.h"
#include "common/rng.h"
#include "exec/executor.h"

namespace faust::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(config), router_(config.shards, config.seed) {
  FAUST_CHECK(config_.shards >= 1);
  const bool proc_mode = config_.mode == ExecMode::kProcess;
  if (proc_mode) {
    FAUST_CHECK(!config_.process.worker_path.empty());
    FAUST_CHECK(durable());  // workers recover from durability_root/shard_<s>
    FAUST_CHECK(config_.process.tick.count() > 0);   // see ProcessOptions::tick
    FAUST_CHECK(config_.process.timer_scale >= 1);
  }

  // Per-shard cache sizing (ROADMAP): each shard's caches see only the
  // keys homed there, so the capacity a single deployment needs can be
  // divided by the shard factor without losing hits — but never below
  // the fixed per-deployment working set floor (PERF.md).
  verify_cache_entries_ =
      config_.verify_cache_entries != 0
          ? config_.verify_cache_entries
          : std::max(kMinVerifyCacheEntries,
                     config_.shard_template.faust.verify_cache_entries / config_.shards);

  if (threaded()) {
    // Paused until every shard is fully assembled: an armed FaustClient
    // timer must not fire (and start sending through a shard's network)
    // while later shards — or later clients of the same shard — are
    // still being constructed on this thread.
    runtimes_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      rt::ThreadedRuntimeConfig rc;
      rc.tick = proc_mode ? config_.process.tick : config_.tick;
      rc.start_paused = true;
      runtimes_.push_back(std::make_unique<rt::ThreadedRuntime>(rc));
    }
  }

  // Process shards come up before any client-side assembly: the worker's
  // READY line carries its bound address (ephemeral TCP ports resolved),
  // which the shard's SocketTransport needs in its peer registry.
  transports_.resize(config_.shards);
  const std::size_t n_proc = process_shard_count();
  if (n_proc > 0) {
    procs_ = std::make_unique<sock::ProcessCluster>(config_.process.ready_timeout);
    const cache::CacheOptions& co = config_.shard_template.cache;
    for (std::size_t s = 0; s < n_proc; ++s) {
      const std::string dir = config_.durability_root + "/shard_" + std::to_string(s);
      std::filesystem::create_directories(dir);
      const sock::Endpoint listen = config_.process.use_tcp
                                        ? sock::Endpoint::tcp("127.0.0.1", 0)
                                        : sock::Endpoint::uds(dir + "/listen.sock");
      std::vector<std::string> args = {
          "serve",
          "--n", std::to_string(config_.shard_template.n),
          "--listen", listen.uri(),
          "--dir", dir,
          "--snapshot-every",
          std::to_string(config_.shard_template.durability.snapshot_every),
          "--tick", std::to_string(config_.process.tick.count()),
      };
      if (co.enabled && !config_.process.cache_mute) {
        // The worker owns this shard's cache node. TTL is worker-side
        // executor time, so it scales like every other timer.
        args.insert(args.end(), {"--cache", "--cache-arena",
                                 std::to_string(co.arena_bytes), "--cache-ttl",
                                 std::to_string(co.ttl * config_.process.timer_scale)});
      }
      const std::size_t idx = procs_->add(config_.process.worker_path, std::move(args));
      FAUST_CHECK(idx == s);
      sock::SocketTransportConfig tc;
      tc.peers[kServerNode] = procs_->info(idx).endpoint;
      if (co.enabled) {
        // Same endpoint: the cache node lives in the worker process, so
        // both NodeIds pool onto one stream. Registered even under
        // cache_mute — lookups must reach (and die inside) the worker for
        // the lookup_timeout→miss path to exercise the real wire.
        tc.peers[cache::kCacheNodeId] = procs_->info(idx).endpoint;
      }
      transports_[s] = std::make_unique<sock::SocketTransport>(*runtimes_[s], tc);
    }
  }

  Rng root(config_.seed);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ClusterConfig c = config_.shard_template;
    c.seed = root.next_u64();  // independent delays & keys per shard
    c.executor = threaded() ? static_cast<exec::Executor*>(runtimes_[s].get())
                            : static_cast<exec::Executor*>(&sched_);
    c.faust.verify_cache_entries = verify_cache_entries_;
    if (transports_[s] != nullptr) {
      // Client side of a process shard: the server (and cache node) are
      // in the worker — this cluster only assembles clients + mailbox
      // over the socket transport, with every protocol timer scaled to
      // real-latency cadence (the D9 timeout audit).
      c.transport = transports_[s].get();
      c.with_server = false;
      c.cache.with_node = false;
      c.durability_dir.clear();  // durability lives in the worker
      c.faust = c.faust.scaled(config_.process.timer_scale);
      c.mail_min_delay *= config_.process.timer_scale;
      c.mail_max_delay *= config_.process.timer_scale;
      c.cache.lookup_timeout *= config_.process.timer_scale;
      c.cache.ttl *= config_.process.timer_scale;
    } else if (!config_.durability_root.empty()) {
      c.durability_dir = config_.durability_root + "/shard_" + std::to_string(s);
      c.durability = config_.shard_template.durability;
    }
    shards_.push_back(std::make_unique<Cluster>(c));
  }

  for (auto& r : runtimes_) r->start();
}

ShardedCluster::~ShardedCluster() { stop(); }

void ShardedCluster::stop() {
  for (auto& r : runtimes_) r->stop();
}

std::size_t ShardedCluster::process_shard_count() const {
  if (config_.mode != ExecMode::kProcess) return 0;
  return std::min(config_.process.process_shards, config_.shards);
}

sim::Scheduler& ShardedCluster::sched() {
  FAUST_CHECK(!threaded());  // a threaded deployment has no central clock
  return sched_;
}

exec::Executor& ShardedCluster::shard_exec(std::size_t s) {
  FAUST_CHECK(s < shards_.size());
  if (threaded()) return *runtimes_[s];
  return sched_;
}

Cluster& ShardedCluster::shard(std::size_t s) {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

const Cluster& ShardedCluster::shard(std::size_t s) const {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

bool ShardedCluster::process_shard(std::size_t s) const {
  FAUST_CHECK(s < transports_.size());
  return transports_[s] != nullptr;
}

sock::SocketTransport* ShardedCluster::shard_transport(std::size_t s) {
  FAUST_CHECK(s < transports_.size());
  return transports_[s].get();
}

bool ShardedCluster::drive(const bool& done, std::size_t step_budget) {
  sched().run_while([&done] { return !done; }, step_budget);
  return done;
}

bool ShardedCluster::await(const std::atomic<bool>& done, std::chrono::milliseconds timeout) {
  if (!threaded()) {
    // One event per microsecond of budget is far beyond any real rate;
    // the point is a deterministic bound, not wall-clock fidelity.
    const auto budget = static_cast<std::size_t>(timeout.count()) * 1000;
    sched().run_while([&done] { return !done.load(std::memory_order_acquire); }, budget);
    return done.load(std::memory_order_acquire);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Spin-then-sleep: completions are typically microseconds away (the
  // shard threads are compute-bound), so yield a while before backing
  // off to a sleep that caps the polling cost of long waits.
  int spins = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  return true;
}

void ShardedCluster::kill_shard(std::size_t s) {
  FAUST_CHECK(durable());
  if (process_shard(s)) {
    // Fence BEFORE the SIGKILL: everything queued towards the worker is
    // purged and everything still arriving from its dying sockets is
    // dropped, mirroring net::Network::kill's epoch bump — a pre-crash
    // byte must never surface in the restarted era (socket_transport.h).
    sock::SocketTransport& t = *transports_[s];
    t.fence(kServerNode);
    if (config_.shard_template.cache.enabled) t.fence(cache::kCacheNodeId);
    procs_->kill(s);
    return;
  }
  Cluster& shard = this->shard(s);
  if (!threaded()) {
    shard.crash_server();
    return;
  }
  // Serialize with the shard's own deliveries: the server object must not
  // be destroyed while its thread is mid-message.
  FAUST_CHECK(exec::post_sync(shard_exec(s), [&shard] { shard.crash_server(); }));
}

void ShardedCluster::restart_shard(std::size_t s) {
  FAUST_CHECK(durable());
  Cluster& shard = this->shard(s);
  if (process_shard(s)) {
    // Blocks until the respawned worker printed READY — recovery from
    // WAL/snapshot happens in its constructor over there.
    (void)procs_->restart(s);
    sock::SocketTransport& t = *transports_[s];
    t.unfence(kServerNode);
    if (config_.shard_template.cache.enabled) t.unfence(cache::kCacheNodeId);
    // Resubmit on the shard's runtime: reconnect mutates client state.
    FAUST_CHECK(exec::post_sync(shard_exec(s), [&shard] { shard.reconnect_clients(); }));
    return;
  }
  if (!threaded()) {
    shard.restart_server();
    return;
  }
  FAUST_CHECK(exec::post_sync(shard_exec(s), [&shard] { shard.restart_server(); }));
}

bool ShardedCluster::shard_up(std::size_t s) const {
  FAUST_CHECK(s < shards_.size());
  if (transports_[s] != nullptr) return procs_->up(s);
  return shards_[s]->server_up();
}

std::vector<std::optional<sock::ServerStats>> ShardedCluster::finalize_processes() {
  std::vector<std::optional<sock::ServerStats>> out;
  for (std::size_t s = 0; s < process_shard_count(); ++s) {
    out.push_back(procs_->up(s) ? procs_->shutdown(s) : std::nullopt);
  }
  return out;
}

bool ShardedCluster::any_failed() const {
  for (const auto& s : shards_) {
    if (s->any_failed()) return true;
  }
  return false;
}

bool ShardedCluster::all_failed() const {
  for (const auto& s : shards_) {
    if (!s->all_failed()) return false;
  }
  return true;
}

net::ChannelStats ShardedCluster::total_traffic() const {
  net::ChannelStats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += transports_[s] != nullptr ? transports_[s]->total() : shards_[s]->net().total();
  }
  return total;
}

}  // namespace faust::shard
