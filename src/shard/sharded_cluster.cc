#include "shard/sharded_cluster.h"

#include "common/check.h"
#include "common/rng.h"

namespace faust::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(config), router_(config.shards, config.seed) {
  FAUST_CHECK(config_.shards >= 1);
  Rng root(config_.seed);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ClusterConfig c = config_.shard_template;
    c.seed = root.next_u64();  // independent delays & keys per shard
    c.scheduler = &sched_;     // co-scheduled: one deterministic clock
    shards_.push_back(std::make_unique<Cluster>(c));
  }
}

Cluster& ShardedCluster::shard(std::size_t s) {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

const Cluster& ShardedCluster::shard(std::size_t s) const {
  FAUST_CHECK(s < shards_.size());
  return *shards_[s];
}

bool ShardedCluster::drive(const bool& done, std::size_t step_budget) {
  sched_.run_while([&done] { return !done; }, step_budget);
  return done;
}

bool ShardedCluster::any_failed() const {
  for (const auto& s : shards_) {
    if (s->any_failed()) return true;
  }
  return false;
}

bool ShardedCluster::all_failed() const {
  for (const auto& s : shards_) {
    if (!s->all_failed()) return false;
  }
  return true;
}

net::ChannelStats ShardedCluster::total_traffic() const {
  net::ChannelStats total;
  for (const auto& s : shards_) total += s->net().total();
  return total;
}

}  // namespace faust::shard
