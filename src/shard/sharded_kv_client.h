// ShardedKvClient — one logical multi-writer KV client spread over the S
// deployments of a ShardedCluster.
//
// Routing: a key's home shard is fixed by the deployment's ShardRouter;
// puts and gets go only to the home shard, list fans out to every shard
// concurrently and merges (each shard's read pipeline advances
// independently, so a full list costs ~one shard's latency, not S of
// them).
//
// Execution modes: in a kDeterministic deployment every operation runs
// inline on the caller's thread, exactly as before the executor seam. In
// a kThreaded deployment each operation's body is post()ed onto the home
// shard's runtime (list: onto every shard's runtime), so the protocol
// objects are only ever touched by their owning shard thread; completion
// handlers therefore run on shard threads, and concurrent completions
// from different shards merge under an internal mutex. Operations may be
// issued from any one caller thread; the object itself is not a
// multi-producer API (one logical client = one issuing thread, matching
// the paper's well-formed executions).
//
// Oracle equivalence: each per-shard kv::KvClient keeps its own put
// counter, but conflict winners are chosen by (seq, writer) — so every
// put/erase draws a ticket from a single cross-shard op counter and
// aligns the home shard's counter to it (KvClient::advance_seq). The
// merged sharded view is then key-for-key identical to one un-sharded
// deployment replaying the same ops, which is exactly what
// tests/shard_differential_test.cc checks (and its threaded sibling
// checks as set-equivalence at quiescent points).
//
// Fail-aware semantics aggregate across shards:
//   * fail_i on ANY shard surfaces through `on_fail(shard, reason)`, and
//     ops routed to a failed shard complete immediately with
//     `shard_failed` set (a get) or timestamp 0 (a put) instead of
//     hanging — the paper's fail_i halts the underlying FaustClient.
//   * a key's value is *stable* only when its home shard's stability cut
//     covers the reads that observed the winning write: stable(result)
//     compares the get's home-shard read timestamp against that shard's
//     fully-stable timestamp. Other shards' cuts are irrelevant to this
//     key — stability, like the data, is partitioned.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kvstore/kv_client.h"
#include "shard/sharded_cluster.h"

namespace faust::shard {

/// A sharded get: the merged entry plus the home shard's fail-aware
/// context.
struct ShardedGetResult {
  std::optional<kv::KvEntry> entry;
  std::size_t shard = 0;      // the key's home shard
  Timestamp read_ts = 0;      // home-shard timestamp of the observing reads
  bool shard_failed = false;  // fail_i had fired on the home shard
  /// D8: at least one register of the observing snapshot was served by
  /// the shard's edge cache; `as_of` is its freshness horizon (see
  /// kv::ReadOrigin). A fully cache-served snapshot has read_ts equal to
  /// as_of and is not eligible for stable() — staleness is surfaced, not
  /// hidden.
  bool cached = false;
  Timestamp as_of = 0;
};

/// A sharded list: merged across every live shard.
struct ShardedListResult {
  std::map<std::string, kv::KvEntry> entries;
  bool complete = false;  // false when a failed shard's keys are missing
};

/// KV facade over one client id across every shard of a ShardedCluster.
class ShardedKvClient {
 public:
  using PutHandler = kv::KvClient::PutHandler;
  using GetHandler = std::function<void(const ShardedGetResult&)>;
  using ListHandler = std::function<void(const ShardedListResult&)>;
  using FailHandler = std::function<void(std::size_t shard, FailureReason)>;

  /// Binds client `id` of every shard. The deployment must outlive this
  /// object; at most one ShardedKvClient (or plain KvClient) per
  /// (deployment, id) — they must not share FaustClients. `tuning` is
  /// applied to every per-shard engine (the differential tests force the
  /// legacy paths through it).
  ShardedKvClient(ShardedCluster& deployment, ClientId id, kv::KvTuning tuning = {});

  /// Destruction settles every in-flight op with its failure outcome
  /// (put → t=0, get → shard_failed, list → complete=false), so handlers
  /// are never silently dropped. Like a plain KvClient, the object must
  /// not be destroyed and the deployment then stepped further while its
  /// underlying FAUST ops are still pending — tear client and deployment
  /// down together (or drain first). Threaded deployments must be
  /// stop()ped (or quiescent) before this destructor runs: it restores
  /// handler chains the shard threads would otherwise be reading.
  ~ShardedKvClient();

  ShardedKvClient(const ShardedKvClient&) = delete;
  ShardedKvClient& operator=(const ShardedKvClient&) = delete;

  /// Upserts key := value in the key's home shard. `done(t)` delivers the
  /// home-shard register-write timestamp — or 0 if that shard already
  /// failed (immediately when inline; from the shard thread when
  /// threaded).
  void put(std::string key, std::string value, PutHandler done = {});

  /// Removes this client's entry for `key` from its home shard. Erasing a
  /// key absent from this client's home-shard partition is a complete
  /// no-op (no cross-shard sequence ticket, no publication) and completes
  /// with t=0, matching KvClient::erase.
  void erase(const std::string& key, PutHandler done = {});

  // --- Batch engine hooks (the api::Store facade drives these) ----------

  /// `done(t, failed)`: t is the publication timestamp (0 when nothing
  /// needed publishing or the shard failed); `failed` disambiguates the
  /// two t=0 cases.
  using MutateHandler = std::function<void(Timestamp, bool failed)>;
  /// `done(merged, read_ts, origin)`: the shard's full merged snapshot,
  /// or null when the shard failed. The map is borrowed — valid only for
  /// the duration of the callback (it may be the engine's merged-view
  /// memo, served without a copy). `origin` carries the snapshot's cache
  /// provenance (kv::ReadOrigin; all-default when the shard failed).
  using SnapshotHandler = std::function<void(const std::map<std::string, kv::KvEntry>*,
                                             Timestamp, const kv::ReadOrigin&)>;

  /// Draws one cross-shard sequence ticket. The facade draws tickets at
  /// plan time, in batch program order, so a batch's winners (and exact
  /// per-entry sequence numbers) are identical to the single-deployment
  /// oracle replaying the same ops — regardless of the order the shard
  /// chains execute in (which races under kThreaded). Thread-safe.
  std::uint64_t draw_seq();

  /// Applies `changes` (with their pre-drawn tickets, KvClient
  /// apply_with_seqs rules) to shard `s`'s partition in ONE publication.
  /// The caller must route only keys homed on `s` here. The op is
  /// registered in the pending set BEFORE it is dispatched to the shard
  /// thread, so it settles with the failure outcome even when the runtime
  /// stops before the body ever runs.
  void apply_on_shard(std::size_t s, std::vector<kv::KvClient::SeqChange> changes,
                      MutateHandler done);

  /// One merged snapshot of shard `s` (n register reads), serving any
  /// number of point lookups and list contributions at a batch's read
  /// point. Settles with (nullopt, 0) if the shard fails (or its runtime
  /// stops) mid-operation; same arm-before-dispatch guarantee as above.
  void snapshot_on_shard(std::size_t s, SnapshotHandler done);

  /// D10 degraded snapshot of shard `s`: cache-ONLY, allow_stale — the
  /// shard's FAUST deployment is never contacted (the caller holds its
  /// breaker open). Settles with (nullptr, 0, {}) when the shard has no
  /// cache tier or the cache cannot serve every register; a non-null map
  /// always has origin.cached set (stale-but-authentic, never stable).
  void snapshot_degraded_on_shard(std::size_t s, SnapshotHandler done);

  /// Merged lookup in the key's home shard.
  void get(const std::string& key, GetHandler done);

  /// Concurrent fan-out over all shards, merged. Keys homed on a failed
  /// shard are absent and `complete` is false. `bypass_cache` forces
  /// every shard's snapshot through the FAUST engine even when the
  /// deployment has a cache tier — the authoritative view differential
  /// oracles compare against.
  void list(ListHandler done, bool bypass_cache = false);

  /// fail_i of any shard's underlying FaustClient, with the shard index.
  /// Threaded mode: invoked on the failing shard's thread; install it
  /// before traffic starts and treat it as a cross-thread callback.
  FailHandler on_fail;

  std::size_t home_shard(std::string_view key) const {
    return deployment_.router().shard_of(key);
  }

  /// Threaded mode: meaningful only at quiescence (no op in flight).
  bool any_shard_failed() const;
  std::vector<std::size_t> failed_shards() const;

  /// True iff the result's observing reads are covered by the home
  /// shard's stability cut — the merged value is then in the linearizable
  /// prefix of that shard (Def. 5 item 6) and can never be rolled back.
  /// Threaded mode: meaningful only at quiescence.
  bool stable(const ShardedGetResult& r) const;

  /// The fully-stable timestamp of this client in shard `s`.
  Timestamp shard_stable_ts(std::size_t s) const;

  ClientId id() const { return id_; }
  std::size_t shards() const { return kv_.size(); }

  /// The per-shard KV client (tests inspect partitions and counters; in
  /// threaded mode only from the shard's thread or at quiescence).
  kv::KvClient& shard_kv(std::size_t s) { return *kv_[s]; }

 private:
  /// Fan-out accumulator for list(); mutated under mu_.
  struct Fan {
    ShardedListResult result;
    std::size_t waiting = 0;
    ListHandler done;
  };

  /// Runs `body` on shard `s`'s executor thread: inline when the
  /// deployment is deterministic (single-threaded), post()ed when
  /// threaded. All protocol-object access funnels through this. Returns
  /// false when a stopped runtime refused the post (the body will never
  /// run); ops with an armed pending ticket must then settle themselves.
  bool dispatch(std::size_t s, std::function<void()> body);

  /// Posts `body` to shard `s` and waits for it to run (threaded), or
  /// runs it inline (deterministic). Construction-time only. Returns
  /// false when the shard's runtime was stopped and the body never ran.
  bool dispatch_sync(std::size_t s, const std::function<void()>& body);

  // Operation bodies; always run on shard `s`'s thread.
  void put_on_shard(std::size_t s, std::string key, std::string value, PutHandler done,
                    bool is_erase);
  void get_on_shard(std::size_t s, const std::string& key, GetHandler done);
  void list_on_shard(std::size_t s, const std::shared_ptr<Fan>& fan, bool bypass_cache);
  void mutate_on_shard(std::size_t s, std::vector<kv::KvClient::SeqChange> changes,
                       MutateHandler complete);
  void snapshot_shard(std::size_t s, SnapshotHandler complete);
  void snapshot_degraded_shard(std::size_t s, SnapshotHandler complete);

  /// Completes every op still in flight on shard `s` with its failure
  /// outcome. fail_i mid-operation halts the FaustClient and drops its
  /// queued callbacks, so without this flush a handler dispatched before
  /// the detection would never fire (and a list() would discard the
  /// healthy shards' results). Runs on shard `s`'s thread (or at
  /// teardown, when nothing else runs).
  void settle_failed_shard(std::size_t s);

  ShardedCluster& deployment_;
  const ClientId id_;

  /// Guards seq_, next_op_, pending_ and Fan state: the only state shared
  /// across shard threads. Never held across a protocol call or a user
  /// handler.
  std::mutex mu_;
  std::uint64_t seq_ = 0;      // cross-shard op counter (oracle-aligned)
  std::uint64_t next_op_ = 0;  // in-flight op ids (pending_ keys)
  /// [shard]: the edge-cache hop of this client in that shard's
  /// deployment (null per shard when the cache tier is off there).
  /// Declared before kv_ so each KvClient (holding a raw pointer via
  /// attach_cache) is destroyed first.
  std::vector<std::unique_ptr<cache::CacheClient>> cache_;
  std::vector<std::unique_ptr<kv::KvClient>> kv_;          // [shard]
  /// [shard]: abort thunk per in-flight op; each thunk completes its op
  /// with the failed-shard outcome (idempotent with the normal path).
  std::vector<std::map<std::uint64_t, std::function<void()>>> pending_;
  std::vector<FaustClient::FailHandler> chained_on_fail_;  // restored at dtor
  /// [shard]: the fail hook swap actually ran (its runtime was alive);
  /// only then does the destructor restore chained_on_fail_.
  std::vector<bool> hooked_;
};

}  // namespace faust::shard
