#include "common/bytes.h"

namespace faust {

void append(Bytes& dst, BytesView src) { dst.insert(dst.end(), src.begin(), src.end()); }

void append(Bytes& dst, std::string_view s) {
  dst.insert(dst.end(), reinterpret_cast<const std::uint8_t*>(s.data()),
             reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

void append_byte(Bytes& dst, std::uint8_t b) { dst.push_back(b); }

void append_u64(Bytes& dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u32(Bytes& dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

Bytes to_bytes(std::string_view s) {
  Bytes b;
  append(b, s);
  return b;
}

std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace faust
