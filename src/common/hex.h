// Hexadecimal encoding/decoding, used in logs, examples and test vectors.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace faust {

/// Lower-case hex encoding of `b` ("" for empty input).
std::string hex_encode(BytesView b);

/// Decodes lower- or upper-case hex. Returns std::nullopt on odd length or
/// non-hex characters.
std::optional<Bytes> hex_decode(std::string_view s);

}  // namespace faust
