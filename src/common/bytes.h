// Byte-string utilities shared by every module.
//
// The protocols in this repository sign, hash and transmit flat byte
// strings.  `Bytes` is the canonical representation; the helpers here keep
// concatenation and framing explicit so that signature domains stay
// unambiguous (see DESIGN.md, decision D3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace faust {

/// Flat, owned byte string. The unit of hashing, signing and transport.
using Bytes = std::vector<std::uint8_t>;

/// Read-only, non-owning view over bytes (cheap to pass by value).
using BytesView = std::span<const std::uint8_t>;

/// An immutable byte string that shares ownership of its backing buffer
/// (possibly viewing only a slice of it). Copying is a refcount bump, so
/// large payloads — register values holding whole KV partitions — travel
/// from the wire into server memory and back out without being copied
/// (PERF.md "O(change) operations"). An empty SharedBytes has no backing
/// buffer at all.
class SharedBytes {
 public:
  SharedBytes() = default;

  /// Takes ownership of `b` (one move, no copy).
  static SharedBytes owned(Bytes b) {
    auto owner = std::make_shared<const Bytes>(std::move(b));
    BytesView view(*owner);
    return SharedBytes(std::move(owner), view);
  }

  /// Copies `b` into a fresh buffer.
  static SharedBytes copy_of(BytesView b) { return owned(Bytes(b.begin(), b.end())); }

  /// Shares `owner` and views the given slice of it (`view` must point
  /// into `*owner`, which the shared ownership keeps alive).
  static SharedBytes slice(std::shared_ptr<const Bytes> owner, BytesView view) {
    return SharedBytes(std::move(owner), view);
  }

  BytesView view() const { return view_; }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

  /// Materializes an owned copy (for consumers that mutate, e.g. the
  /// adversarial reply-distortion paths).
  Bytes to_bytes() const { return Bytes(view_.begin(), view_.end()); }

 private:
  SharedBytes(std::shared_ptr<const Bytes> owner, BytesView view)
      : owner_(std::move(owner)), view_(view) {}

  std::shared_ptr<const Bytes> owner_;
  BytesView view_;
};

/// Appends `src` to `dst` in place.
void append(Bytes& dst, BytesView src);

/// Appends the raw characters of `s` (no terminator) to `dst`.
void append(Bytes& dst, std::string_view s);

/// Appends a single byte.
void append_byte(Bytes& dst, std::uint8_t b);

/// Appends `v` in little-endian order (8 bytes).
void append_u64(Bytes& dst, std::uint64_t v);

/// Appends `v` in little-endian order (4 bytes).
void append_u32(Bytes& dst, std::uint32_t v);

/// Builds a byte string from a string literal / std::string.
Bytes to_bytes(std::string_view s);

/// Interprets a byte string as text (for logging only).
std::string to_string(BytesView b);

/// Constant-time equality. Use for comparing MACs / signatures so that the
/// comparison itself does not leak where the first mismatch occurs.
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace faust
