// Byte-string utilities shared by every module.
//
// The protocols in this repository sign, hash and transmit flat byte
// strings.  `Bytes` is the canonical representation; the helpers here keep
// concatenation and framing explicit so that signature domains stay
// unambiguous (see DESIGN.md, decision D3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace faust {

/// Flat, owned byte string. The unit of hashing, signing and transport.
using Bytes = std::vector<std::uint8_t>;

/// Read-only, non-owning view over bytes (cheap to pass by value).
using BytesView = std::span<const std::uint8_t>;

/// Appends `src` to `dst` in place.
void append(Bytes& dst, BytesView src);

/// Appends the raw characters of `s` (no terminator) to `dst`.
void append(Bytes& dst, std::string_view s);

/// Appends a single byte.
void append_byte(Bytes& dst, std::uint8_t b);

/// Appends `v` in little-endian order (8 bytes).
void append_u64(Bytes& dst, std::uint64_t v);

/// Appends `v` in little-endian order (4 bytes).
void append_u32(Bytes& dst, std::uint32_t v);

/// Builds a byte string from a string literal / std::string.
Bytes to_bytes(std::string_view s);

/// Interprets a byte string as text (for logging only).
std::string to_string(BytesView b);

/// Constant-time equality. Use for comparing MACs / signatures so that the
/// comparison itself does not leak where the first mismatch occurs.
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace faust
