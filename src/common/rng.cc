#include "common/rng.h"

namespace faust {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection: retry while in the biased zone.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace faust
