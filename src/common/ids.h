// Identifier vocabulary shared across the protocol stack.
#pragma once

#include <cstdint>

namespace faust {

/// Client index. The paper indexes clients C1..Cn; we use 1-based ids so
/// that logs and register names line up with the paper's notation.
/// Register X_i is writable only by client i (SWMR).
using ClientId = int;

/// Node id on the simulated network. The server is node 0; client C_i is
/// node i.
using NodeId = int;

/// The server's node id.
inline constexpr NodeId kServerNode = 0;

/// Per-client operation timestamp (the `t` of Algorithm 1); starts at 1.
using Timestamp = std::uint64_t;

}  // namespace faust
