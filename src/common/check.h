// Internal invariant checking.
//
// FAUST_CHECK guards *programming errors inside this library* (broken
// invariants, misuse of an API); it aborts with a message.  It is never
// used for conditions that an untrusted server can trigger — those flow
// through the protocols' explicit fail paths (ustor::Client::failed(),
// faust::Client::on_fail) as the paper requires.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace faust::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "FAUST_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace faust::detail

#define FAUST_CHECK(cond)                                         \
  do {                                                            \
    if (!(cond)) ::faust::detail::check_failed(#cond, __FILE__, __LINE__); \
  } while (0)
