// Deterministic pseudo-random number generation.
//
// Every randomized component in the repository (network delays, workload
// generators, adversary choices, property tests) draws from an explicitly
// seeded `Rng`, so a single 64-bit seed reproduces an entire execution.
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend; it is *not* cryptographic and is
// never used for key material (see crypto/keystore.h for that).
#pragma once

#include <cstdint>

namespace faust {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the state from `seed` via SplitMix64; any seed (including 0) is
  /// valid and gives a full-period state.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling; bound must be
  /// nonzero. Unbiased.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p);

  /// Derives an independent child generator. Used to give each component
  /// its own stream so that adding draws in one place does not perturb the
  /// sequence seen elsewhere.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace faust
