#include "net/network.h"

#include <utility>

namespace faust::net {

Network::Network(exec::Executor& exec, Rng rng, DelayModel delay)
    : exec_(exec), rng_(std::move(rng)), delay_(delay) {}

void Network::attach(NodeId id, Node& node) {
  // Re-attaching after a kill is a revival: bump the epoch again so that
  // anything sent towards the dead node during its downtime (stamped with
  // the post-kill epoch) stays undeliverable to the new incarnation.
  if (killed_.erase(id) > 0) ++epoch_[id];
  nodes_[id] = &node;
}

void Network::detach(NodeId id) { nodes_.erase(id); }

void Network::send(NodeId from, NodeId to, Bytes msg) {
  if (crashed(from) || crashed(to)) return;

  ChannelState& ch = channels_[{from, to}];
  ch.stats.messages += 1;
  ch.stats.bytes += msg.size();
  total_.messages += 1;
  total_.bytes += msg.size();

  const std::size_t bucket =
      msg.empty() ? 0 : (msg[0] < kTypeBuckets ? msg[0] : std::size_t{0});
  ch.by_type[bucket].messages += 1;
  ch.by_type[bucket].bytes += msg.size();
  total_by_type_[bucket].messages += 1;
  total_by_type_[bucket].bytes += msg.size();

  // D10 chaos: counters above record what the protocol PUT on the channel
  // (comparable with the chaos-free run); losses happen after.
  if (partitioned(from, to)) {
    ++chaos_.partition_dropped;
    return;
  }
  if (plan_.drop > 0 && chaos_rng_->chance(plan_.drop)) {
    ++chaos_.dropped;
    return;
  }
  sim::Time extra = plan_.extra_delay;
  if (plan_.jitter > 0) extra += chaos_rng_->next_in(0, plan_.jitter);

  // FIFO per channel: a message never overtakes an earlier one. Equal
  // delivery times are fine — the scheduler runs same-tick events in
  // schedule (i.e. send) order.
  const sim::Time earliest = exec_.now() + delay_.sample(rng_) + extra;
  sim::Time when = std::max(earliest, ch.last_scheduled);
  if (plan_.reorder > 0 && chaos_rng_->chance(plan_.reorder)) {
    // Chaos reorder: this message ignores the FIFO clamp (it may overtake
    // in-flight channel traffic) and does not advance it for later sends.
    if (earliest < when) ++chaos_.reordered;
    when = earliest;
  } else {
    ch.last_scheduled = when;
  }

  // The buffer is moved into shared ownership once and delivered as such:
  // a receiver that retains a slice (the server keeps submitted register
  // values) pins the buffer instead of copying it. Both endpoints' epochs
  // are stamped at send time: a kill() (or kill+revive) of either endpoint
  // between send and delivery invalidates the message.
  const std::uint64_t ef = epoch_of(from);
  const std::uint64_t et = epoch_of(to);
  auto m = std::make_shared<const Bytes>(std::move(msg));
  const auto deliver = [this, from, to, ef, et, m]() {
    if (crashed(to) || crashed(from)) return;  // crash between send and delivery
    if (epoch_of(from) != ef || epoch_of(to) != et) return;  // kill/revive raced it
    if (partitioned(from, to)) {  // partition raced the in-flight message
      ++chaos_.partition_dropped;
      return;
    }
    auto it = nodes_.find(to);
    if (it == nodes_.end()) return;
    it->second->on_shared_message(from, m);
  };
  exec_.at(when, deliver);
  if (plan_.duplicate > 0 && chaos_rng_->chance(plan_.duplicate)) {
    ++chaos_.duplicated;
    exec_.at(exec_.now() + delay_.sample(*chaos_rng_) + extra, deliver);
  }
}

void Network::set_fault_plan(const FaultPlan& plan) {
  // The chaos stream is forked lazily so that a Network which never
  // installs a plan draws exactly the pre-chaos delay sequence.
  if (!chaos_rng_.has_value()) chaos_rng_ = rng_.fork();
  plan_ = plan;
}

void Network::crash(NodeId id) { crashed_[id] = 1; }

void Network::kill(NodeId id) {
  ++epoch_[id];
  killed_.insert(id);
}

ChannelStats Network::channel(NodeId from, NodeId to) const {
  auto it = channels_.find({from, to});
  return it == channels_.end() ? ChannelStats{} : it->second.stats;
}

ChannelStats Network::channel_for(NodeId from, NodeId to, std::uint8_t tag) const {
  auto it = channels_.find({from, to});
  if (it == channels_.end()) return ChannelStats{};
  return it->second.by_type[tag < kTypeBuckets ? tag : 0];
}

}  // namespace faust::net
