// Simulated asynchronous network: reliable FIFO point-to-point channels.
//
// Models the client↔server channels of Figure 1: every message sent on a
// channel is eventually delivered, exactly once, in FIFO order, after an
// arbitrary finite delay drawn from a seeded delay model.  Crash support
// exists for modelling a crashed (silent) server or client — crashing is
// the only way a message is ever lost, matching §2 where channels are
// reliable and failures are per-party.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "net/transport.h"
#include "sim/scheduler.h"  // sim::Time (= exec::Time) for the delay model

namespace faust::net {

/// Uniform random per-message delay in [min_delay, max_delay] ticks.
struct DelayModel {
  sim::Time min_delay = 1;
  sim::Time max_delay = 10;

  sim::Time sample(Rng& rng) const {
    return min_delay == max_delay ? min_delay : rng.next_in(min_delay, max_delay);
  }
};

/// Per-direction traffic counters (used by the overhead/throughput benches).
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  /// Accumulation across channels or deployments (the sharded harness sums
  /// every shard's fabric into one aggregate).
  ChannelStats& operator+=(const ChannelStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }
};

/// The simulated network fabric (the Transport used by tests/benches).
///
/// Nodes are attached non-owning; the caller keeps them alive for the
/// lifetime of the Network (standard arrangement in the tests: all parties
/// and the Network live in one harness struct).
class Network : public Transport {
 public:
  /// Runs on any exec::Executor: the deterministic simulator in tests,
  /// a rt::ThreadedRuntime in the threaded shard mode. All calls into a
  /// Network (attach/send/crash) must come from the executor's thread.
  Network(exec::Executor& exec, Rng rng, DelayModel delay = {});

  /// Attaches `node` under `id`, replacing any previous attachment.
  void attach(NodeId id, Node& node) override;

  /// Detaches `id`; in-flight messages to it are dropped at delivery time.
  void detach(NodeId id) override;

  /// Sends `msg` from `from` to `to`. Delivery is scheduled FIFO per
  /// (from,to) channel with a sampled delay. Messages from or to a crashed
  /// node are silently dropped.
  void send(NodeId from, NodeId to, Bytes msg) override;

  /// Marks `id` crashed: it no longer sends or receives anything.
  void crash(NodeId id);
  bool crashed(NodeId id) const { return crashed_.count(id) > 0; }

  /// Kills `id` TRANSIENTLY (a crash the node may come back from, unlike
  /// crash()): every message currently in flight from or to `id` is
  /// dropped, and so is anything sent to it while it is down. Delivery is
  /// epoch-gated — send() stamps both endpoints' epochs onto the message,
  /// kill() bumps the victim's epoch, and a later attach() of the same id
  /// bumps it again — so a restarted node can never receive a message from
  /// a previous incarnation of the channel (a stale pre-crash REPLY would
  /// otherwise race the resubmitted operation and trip the client's
  /// unsolicited-reply check). The node object itself is NOT detached;
  /// destroy/detach it separately.
  void kill(NodeId id);

  /// True between kill(id) and the next attach(id, ...).
  bool killed(NodeId id) const { return killed_.count(id) > 0; }

  /// Aggregate counters over all channels.
  const ChannelStats& total() const { return total_; }

  /// Counters for the (from,to) directed channel.
  ChannelStats channel(NodeId from, NodeId to) const;

  /// Messages are bucketed by their leading wire tag (ustor::MsgType
  /// values; bench JSON reports bytes/op per message type). Tags >=
  /// kTypeBuckets and empty messages land in bucket 0 (never produced by
  /// this codebase's encoders).
  static constexpr std::size_t kTypeBuckets = 16;
  using TypeStats = std::array<ChannelStats, kTypeBuckets>;

  /// Aggregate per-type counters over all channels.
  const TypeStats& total_by_type() const { return total_by_type_; }
  const ChannelStats& total_for(std::uint8_t tag) const {
    return total_by_type_[tag < kTypeBuckets ? tag : 0];
  }

  /// Per-type counters for the (from,to) directed channel.
  ChannelStats channel_for(NodeId from, NodeId to, std::uint8_t tag) const;

 private:
  struct ChannelState {
    sim::Time last_scheduled = 0;  // FIFO: next delivery not before this
    ChannelStats stats;
    TypeStats by_type;
  };

  std::uint64_t epoch_of(NodeId id) const {
    auto it = epoch_.find(id);
    return it == epoch_.end() ? 0 : it->second;
  }

  exec::Executor& exec_;
  Rng rng_;
  DelayModel delay_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
  std::unordered_map<NodeId, char> crashed_;
  std::unordered_map<NodeId, std::uint64_t> epoch_;  // bumped by kill + revival
  std::unordered_set<NodeId> killed_;                // currently-down transients
  ChannelStats total_;
  TypeStats total_by_type_{};
};

}  // namespace faust::net
