// Simulated asynchronous network: reliable FIFO point-to-point channels.
//
// Models the client↔server channels of Figure 1: every message sent on a
// channel is eventually delivered, exactly once, in FIFO order, after an
// arbitrary finite delay drawn from a seeded delay model.  Crash support
// exists for modelling a crashed (silent) server or client — crashing is
// the only way a message is ever lost, matching §2 where channels are
// reliable and failures are per-party.
//
// D10 extends the model with declarative chaos (FaultPlan + directed
// partitions): loss, duplication, reordering and latency injection, all
// drawn from a dedicated seeded stream so storms replay deterministically.
// The protocol layers must ride this out WITHOUT firing fail_i — a timing
// fault is not misbehavior (fail-awareness, Def. 5 accuracy) — which the
// chaos differential tests pin.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "net/transport.h"
#include "sim/scheduler.h"  // sim::Time (= exec::Time) for the delay model

namespace faust::net {

/// Uniform random per-message delay in [min_delay, max_delay] ticks.
struct DelayModel {
  sim::Time min_delay = 1;
  sim::Time max_delay = 10;

  sim::Time sample(Rng& rng) const {
    return min_delay == max_delay ? min_delay : rng.next_in(min_delay, max_delay);
  }
};

/// D10 declarative chaos (DESIGN.md): per-message fault probabilities and
/// latency shaping applied deterministically inside Network::send from a
/// dedicated seeded stream — the same seed replays the same storm, which
/// is what lets the differential oracle compare a chaos run against a
/// chaos-free replay. The all-zero default is exactly the pre-chaos
/// fabric: no extra RNG draws happen, so seeded executions without a
/// plan are unchanged.
struct FaultPlan {
  /// Probability each message is dropped at send time.
  double drop = 0;
  /// Probability a message is delivered twice; the duplicate takes its
  /// own independently sampled delay and ignores the FIFO clamp.
  double duplicate = 0;
  /// Probability a message skips the per-channel FIFO clamp, letting it
  /// overtake earlier messages still in flight on its channel.
  double reorder = 0;
  /// Fixed latency added to every message.
  sim::Time extra_delay = 0;
  /// Additional uniform latency in [0, jitter] per message.
  sim::Time jitter = 0;

  bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || extra_delay > 0 || jitter > 0;
  }
};

/// Chaos bookkeeping: what a storm actually did to the fabric.
struct ChaosStats {
  std::uint64_t dropped = 0;            // FaultPlan::drop losses
  std::uint64_t duplicated = 0;         // second deliveries scheduled
  std::uint64_t reordered = 0;          // FIFO-clamp skips that could overtake
  std::uint64_t partition_dropped = 0;  // losses on partitioned channels
};

/// Per-direction traffic counters (used by the overhead/throughput benches).
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  /// Accumulation across channels or deployments (the sharded harness sums
  /// every shard's fabric into one aggregate).
  ChannelStats& operator+=(const ChannelStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }
};

/// The simulated network fabric (the Transport used by tests/benches).
///
/// Nodes are attached non-owning; the caller keeps them alive for the
/// lifetime of the Network (standard arrangement in the tests: all parties
/// and the Network live in one harness struct).
class Network : public Transport {
 public:
  /// Runs on any exec::Executor: the deterministic simulator in tests,
  /// a rt::ThreadedRuntime in the threaded shard mode. All calls into a
  /// Network (attach/send/crash) must come from the executor's thread.
  Network(exec::Executor& exec, Rng rng, DelayModel delay = {});

  /// Attaches `node` under `id`, replacing any previous attachment.
  void attach(NodeId id, Node& node) override;

  /// Detaches `id`; in-flight messages to it are dropped at delivery time.
  void detach(NodeId id) override;

  /// Sends `msg` from `from` to `to`. Delivery is scheduled FIFO per
  /// (from,to) channel with a sampled delay. Messages from or to a crashed
  /// node are silently dropped.
  void send(NodeId from, NodeId to, Bytes msg) override;

  /// Marks `id` crashed: it no longer sends or receives anything.
  void crash(NodeId id);
  bool crashed(NodeId id) const { return crashed_.count(id) > 0; }

  /// Kills `id` TRANSIENTLY (a crash the node may come back from, unlike
  /// crash()): every message currently in flight from or to `id` is
  /// dropped, and so is anything sent to it while it is down. Delivery is
  /// epoch-gated — send() stamps both endpoints' epochs onto the message,
  /// kill() bumps the victim's epoch, and a later attach() of the same id
  /// bumps it again — so a restarted node can never receive a message from
  /// a previous incarnation of the channel (a stale pre-crash REPLY would
  /// otherwise race the resubmitted operation and trip the client's
  /// unsolicited-reply check). The node object itself is NOT detached;
  /// destroy/detach it separately.
  void kill(NodeId id);

  /// True between kill(id) and the next attach(id, ...).
  bool killed(NodeId id) const { return killed_.count(id) > 0; }

  // Chaos (D10) ---------------------------------------------------------

  /// Installs (or replaces) the chaos plan. The plan's random draws come
  /// from a stream forked off the delay RNG on first install, so a
  /// plan-free Network's delay sequence is byte-identical to builds that
  /// predate the chaos layer.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Cuts the DIRECTED from→to channel: sends are dropped (counted), and
  /// so are messages already in flight when delivery comes due.
  /// Asymmetric by design — partition(a,b) alone models a one-way outage;
  /// cut both directions for a full partition. heal()/heal_all() restore.
  void partition(NodeId from, NodeId to) { partitions_.insert({from, to}); }
  void heal(NodeId from, NodeId to) { partitions_.erase({from, to}); }
  void heal_all() { partitions_.clear(); }
  bool partitioned(NodeId from, NodeId to) const {
    return partitions_.count({from, to}) > 0;
  }

  /// Counters for everything the chaos layer did.
  const ChaosStats& chaos() const { return chaos_; }

  /// Aggregate counters over all channels.
  const ChannelStats& total() const { return total_; }

  /// Counters for the (from,to) directed channel.
  ChannelStats channel(NodeId from, NodeId to) const;

  /// Messages are bucketed by their leading wire tag (ustor::MsgType
  /// values; bench JSON reports bytes/op per message type). Tags >=
  /// kTypeBuckets and empty messages land in bucket 0 (never produced by
  /// this codebase's encoders).
  static constexpr std::size_t kTypeBuckets = 16;
  using TypeStats = std::array<ChannelStats, kTypeBuckets>;

  /// Aggregate per-type counters over all channels.
  const TypeStats& total_by_type() const { return total_by_type_; }
  const ChannelStats& total_for(std::uint8_t tag) const {
    return total_by_type_[tag < kTypeBuckets ? tag : 0];
  }

  /// Per-type counters for the (from,to) directed channel.
  ChannelStats channel_for(NodeId from, NodeId to, std::uint8_t tag) const;

 private:
  struct ChannelState {
    sim::Time last_scheduled = 0;  // FIFO: next delivery not before this
    ChannelStats stats;
    TypeStats by_type;
  };

  std::uint64_t epoch_of(NodeId id) const {
    auto it = epoch_.find(id);
    return it == epoch_.end() ? 0 : it->second;
  }

  exec::Executor& exec_;
  Rng rng_;
  DelayModel delay_;
  FaultPlan plan_;
  std::optional<Rng> chaos_rng_;  // forked on first set_fault_plan
  std::set<std::pair<NodeId, NodeId>> partitions_;  // directed cut channels
  ChaosStats chaos_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
  std::unordered_map<NodeId, char> crashed_;
  std::unordered_map<NodeId, std::uint64_t> epoch_;  // bumped by kill + revival
  std::unordered_set<NodeId> killed_;                // currently-down transients
  ChannelStats total_;
  TypeStats total_by_type_{};
};

}  // namespace faust::net
