// Transport abstraction (DESIGN.md, decision D2).
//
// Protocol code (USTOR, FAUST, the baselines) is written against this
// interface only: attach a receiver, send bytes.  Two implementations
// ship with the repository:
//   * net::Network — the deterministic discrete-event simulation used by
//     tests, benches and examples;
//   * rt::ThreadBus — a real multi-threaded in-process message bus
//     (src/rt), demonstrating that the same protocol objects run outside
//     the simulator unchanged.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/ids.h"

namespace faust::net {

/// Receiver interface for nodes attached to a transport.
class Node {
 public:
  virtual ~Node() = default;

  /// Called on message delivery. `msg` is only valid for the duration of
  /// the call; copy it if needed beyond that. For any given node, calls
  /// are serialized (never concurrent with each other).
  virtual void on_message(NodeId from, BytesView msg) = 0;

  /// Shared-ownership delivery: a transport that retains messages in
  /// shared buffers hands the buffer itself over, so a receiver that
  /// wants to KEEP (part of) the message pins it instead of copying —
  /// the USTOR server stores submitted register values this way
  /// (PERF.md "O(change) operations"). Default: plain on_message.
  virtual void on_shared_message(NodeId from, const std::shared_ptr<const Bytes>& msg) {
    on_message(from, BytesView(*msg));
  }
};

/// Point-to-point reliable FIFO message fabric.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attaches `node` under `id`, replacing any previous attachment. The
  /// caller keeps `node` alive until detach or transport destruction.
  virtual void attach(NodeId id, Node& node) = 0;

  /// Detaches `id`; messages to it are dropped from now on.
  virtual void detach(NodeId id) = 0;

  /// Sends `msg` from `from` to `to`: reliable, FIFO per (from,to) pair.
  virtual void send(NodeId from, NodeId to, Bytes msg) = 0;
};

}  // namespace faust::net
