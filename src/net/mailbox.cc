#include "net/mailbox.h"

#include <utility>

#include "common/check.h"

namespace faust::net {

Mailbox::Mailbox(exec::Executor& exec, Rng rng, sim::Time min_delay, sim::Time max_delay)
    : exec_(exec), rng_(std::move(rng)), min_delay_(min_delay), max_delay_(max_delay) {}

void Mailbox::register_client(ClientId client, Handler handler) {
  Box& box = boxes_[client];
  box.handler = std::move(handler);
}

void Mailbox::set_online(ClientId client, bool online) {
  Box& box = boxes_[client];
  const bool was_online = box.is_online;
  box.is_online = online;
  if (!was_online && online) flush(client);
}

bool Mailbox::online(ClientId client) const {
  auto it = boxes_.find(client);
  return it != boxes_.end() && it->second.is_online;
}

void Mailbox::post(ClientId from, ClientId to, Bytes msg) {
  ++posted_;
  Letter letter{from, std::move(msg)};
  Box& box = boxes_[to];
  if (box.is_online) {
    schedule_delivery(to, std::move(letter));
  } else {
    box.queue.push_back(std::move(letter));
  }
}

void Mailbox::flush(ClientId client) {
  Box& box = boxes_[client];
  while (!box.queue.empty()) {
    schedule_delivery(client, std::move(box.queue.front()));
    box.queue.pop_front();
  }
}

void Mailbox::schedule_delivery(ClientId to, Letter letter) {
  const sim::Time delay =
      min_delay_ == max_delay_ ? min_delay_ : rng_.next_in(min_delay_, max_delay_);
  exec_.after(delay, [this, to, l = std::move(letter)]() {
    Box& box = boxes_[to];
    if (!box.is_online) {
      // Went offline again before delivery; requeue (still never lost).
      box.queue.push_back(l);
      return;
    }
    if (box.handler) box.handler(l.from, l.body);
  });
}

}  // namespace faust::net
