// Offline client-to-client communication (the dashed channel of Figure 1).
//
// §2: "there is a reliable offline communication method between clients,
// which eventually delivers messages, even if the clients are not
// simultaneously connected."  Think e-mail: a sender posts a message at
// any time; the mailbox stores it durably and delivers it once the
// recipient is online.  FAUST's PROBE / VERSION / FAILURE messages (§6)
// travel over this channel.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "sim/scheduler.h"  // sim::Time (= exec::Time)

namespace faust::net {

/// Store-and-forward mailbox with eventual delivery.
class Mailbox {
 public:
  /// Called on delivery of a message posted by `from`.
  using Handler = std::function<void(ClientId from, BytesView msg)>;

  /// `delivery_delay` is added once the recipient is online — it models
  /// the latency of the out-of-band medium.
  /// Runs on any exec::Executor (see net::Network for the contract).
  Mailbox(exec::Executor& exec, Rng rng, sim::Time min_delay = 50, sim::Time max_delay = 200);

  /// Registers `client`'s delivery handler. Clients start online.
  void register_client(ClientId client, Handler handler);

  /// Sets a client's connectivity. Going online flushes queued messages.
  void set_online(ClientId client, bool online);
  bool online(ClientId client) const;

  /// Posts `msg` from `from` to `to`. Never lost; delivered (possibly much
  /// later) when `to` is online. Posting requires no connectivity of the
  /// recipient and tolerates `from` going offline afterwards.
  void post(ClientId from, ClientId to, Bytes msg);

  /// Number of messages accepted so far (bench counter).
  std::uint64_t posted() const { return posted_; }

 private:
  struct Letter {
    ClientId from;
    Bytes body;
  };
  struct Box {
    Handler handler;
    bool is_online = true;
    std::deque<Letter> queue;  // letters not yet scheduled for delivery
  };

  void flush(ClientId client);
  void schedule_delivery(ClientId to, Letter letter);

  exec::Executor& exec_;
  Rng rng_;
  sim::Time min_delay_, max_delay_;
  std::unordered_map<ClientId, Box> boxes_;
  std::uint64_t posted_ = 0;
};

}  // namespace faust::net
