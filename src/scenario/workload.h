// Seeded workload generation for the scenario harness (DESIGN.md D7).
//
// The generator produces a deterministic operation stream — same seed,
// same config, byte-identical ops — with the two skews real KV traffic
// exhibits:
//
//   * Zipfian key popularity (YCSB's bounded-zipf construction: an O(K)
//     zeta precompute at construction, O(1) per draw), with the rank
//     scrambled through an FNV-1a hash so the popular keys spread across
//     the keyspace (and hence across shards) instead of clustering at
//     key 0;
//   * temporal working-set locality: with probability `locality` an op
//     re-touches one of the last `working_set` distinct keys drawn,
//     modelling the hot set that drifts over a run.
//
// Determinism is load-bearing: the crash/recovery differential oracle
// replays THE SAME stream against a crash-free deployment and demands a
// byte-identical merged view, so every random draw (op kind, writer,
// locality, key, value bytes) happens in a pinned order regardless of
// outcomes. The stream depends only on (config, seed) — never on
// execution mode, timing, or shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "crypto/sha256.h"

namespace faust::scenario {

/// Knobs for one generated stream.
struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::uint64_t n_keys = 100'000;  // keyspace size K (scenarios go to 10^6)
  std::uint64_t n_ops = 1'000;
  int n_writers = 2;            // ops round-robin over writers 1..n_writers
  double zipf_exponent = 0.99;  // theta of the bounded-zipf draw
  std::size_t working_set = 128;    // size of the recent-keys ring
  double locality = 0.3;            // P(op re-touches the working set)
  double read_fraction = 0.5;       // remainder split: puts (erases are rare)
  double erase_fraction = 0.05;     // of the non-read ops
  std::size_t value_min = 8;        // value length bounds (bytes)
  std::size_t value_max = 64;
};

/// One generated operation.
struct Op {
  enum class Kind : std::uint8_t { kPut = 0, kGet = 1, kErase = 2 };
  Kind kind = Kind::kPut;
  ClientId writer = 1;  // issuing client
  std::uint64_t key = 0;
  std::string value;  // puts only

  bool operator==(const Op&) const = default;
};

/// The printable key a key id maps to (what the KV layer stores).
std::string key_name(std::uint64_t key);

/// Canonical encoding of one op (determinism pinning: tests digest the
/// encoded stream and require byte equality across runs and modes).
Bytes encode_op(const Op& op);

/// Deterministic skewed op stream; see file comment.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// The next operation. Draw order is pinned: kind, writer, locality,
  /// key, then value bytes (puts only); consumed draws never depend on
  /// observable execution state.
  Op next();

  std::uint64_t generated() const { return generated_; }
  const WorkloadConfig& config() const { return config_; }

  /// Chunk-tree digest of the encoded remainder of a FRESH generator's
  /// stream: generates config.n_ops ops and digests their concatenated
  /// encodings. Convenience for determinism tests and the bench.
  static crypto::Hash stream_digest(const WorkloadConfig& config);

 private:
  std::uint64_t zipf_draw();

  const WorkloadConfig config_;
  Rng rng_;
  // Bounded-zipf constants (YCSB ScrambledZipfianGenerator lineage).
  double zetan_ = 0;
  double zeta2_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  std::vector<std::uint64_t> recent_;  // working-set ring
  std::size_t recent_next_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace faust::scenario
