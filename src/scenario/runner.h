// Scenario run driver: a seeded skewed workload (workload.h) against a
// crash-durable ShardedCluster, with declarative mid-run kill/restart
// events and latency/recovery measurement (DESIGN.md D7, PERF.md "Crash
// recovery & tail latency").
//
// The differential-oracle pattern extends to crashes: run the SAME
// (workload seed, cluster seed) twice — once with kill events, once
// crash-free — and the merged views must be byte-identical (the canonical
// merged-view digest makes the comparison one hash compare). Crash-side
// machinery (WAL replay, snapshot re-verification, client resubmit,
// duplicate suppression) is thereby pinned to change NOTHING about the
// outcome, only the latency profile — which the run reports as p50/p99
// per-op latency plus total recovery time, the numbers the perf-smoke CI
// gate bounds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "kvstore/kv_client.h"
#include "scenario/schedule.h"
#include "scenario/workload.h"
#include "shard/sharded_cluster.h"

namespace faust::scenario {

/// Knobs for one scenario run.
struct ScenarioConfig {
  WorkloadConfig workload;
  std::size_t shards = 3;
  std::uint64_t cluster_seed = 1;
  shard::ExecMode mode = shard::ExecMode::kDeterministic;
  std::vector<KillEvent> kills;
  /// D10 chaos: a baseline fault plan installed on every shard's fabric
  /// BEFORE the first op (loss/duplication/reordering/latency, seeded —
  /// the same config replays the same storm), plus scheduled partitions
  /// and mid-run plan changes. All timing faults: the chaos differential
  /// pins that merged/merged_digest match a chaos-free replay and that
  /// any_failed stays false (a slow channel is not misbehavior).
  net::FaultPlan fault_plan;
  std::vector<PartitionEvent> partitions;
  std::vector<ChaosEvent> chaos;
  /// Client SUBMIT/COMMIT retransmission timer (FaustConfig::
  /// retransmit_base, executor ticks; 0 keeps retransmission OFF).
  /// Chaos schedules that DROP messages need this > 0 — a reliable-FIFO
  /// fabric never loses anything, so the seed default stays off to keep
  /// pinned message counts byte-identical.
  std::uint64_t retransmit_base = 0;
  std::uint64_t retransmit_cap = 0;  // 0 = 8 × retransmit_base
  /// Durability root (per-shard subdirectories are created under it).
  /// Empty = memory-only servers; kills are then illegal.
  std::string dir;
  std::size_t snapshot_every = 64;  // per-shard snapshot cadence (records)
  /// Virtual time to run after the last op so probes converge the
  /// stability cuts (deterministic mode only).
  std::uint64_t drain_time = 200'000;
  /// Per-op completion budget in milliseconds (deterministic mode maps
  /// each millisecond to 1000 scheduler steps — see ShardedCluster::
  /// await).
  std::size_t op_budget_ms = 4'000;
  /// D8 edge-cache tier, applied to every shard (cache.enabled wires
  /// CacheClients + an honest CacheNode per shard). The final merged
  /// fan-out always bypasses the cache, so merged/merged_digest stay the
  /// authoritative engine view and the crash and cache differentials
  /// compare like with like.
  cache::CacheOptions cache;
  /// kProcess mode (D9): worker binary, TCP vs UDS, tick and timer scale
  /// for the real-socket deployment. Kill events then SIGKILL the worker
  /// process and restarts run real recovery-from-disk; the downtime is
  /// served by a dedicated restarter thread (`downtime` executor ticks ×
  /// `process.tick` of real time), because a process restart blocks on
  /// the worker's READY line and must not run on the shard's own
  /// runtime. Durability counters come from the workers' STATS lines
  /// (collected by a graceful shutdown after the merged fan-out).
  sock::ProcessOptions process;
};

/// Everything a run observed; the bench and the tests consume this.
struct ScenarioResult {
  bool complete = false;    // every op finished within budget
  bool any_failed = false;  // some client fired fail_i (must stay false)
  std::uint64_t ops = 0;

  // Per-op wall-clock latency (microseconds), plus the percentiles the
  // SLO gate reads. Wall-clock even in deterministic mode: virtual time
  // is delay-model fiction, while recovery cost (replay, re-hashing) is
  // real compute this actually measures.
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;

  int restarts = 0;                // kill/restart events executed
  int restarts_from_snapshot = 0;  // recoveries that used a verified snapshot
  double recovery_ms_total = 0;    // wall-clock inside restart recovery

  // Aggregated durability counters over every shard (post-run).
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshots_rejected = 0;
  std::uint64_t duplicate_replies = 0;
  std::uint64_t wal_records = 0;

  // Final merged view (client 1's fan-out list) and its canonical digest
  // — the crash/crash-free differential compares these.
  std::map<std::string, kv::KvEntry> merged;
  crypto::Hash merged_digest{};
  bool merged_complete = false;  // the fan-out saw every shard

  /// Client 1's per-shard stability cut at the end of the drain
  /// (deterministic mode; empty in threaded mode).
  std::vector<Timestamp> shard_stable;

  // D8 cache effectiveness, aggregated over every client and shard
  // (post-run; all zero with the cache off). A "register" here is one
  // per-writer partition slot an observing snapshot resolved.
  std::uint64_t reads = 0;                   // get ops issued
  std::uint64_t registers_cache_served = 0;  // slots served by the cache tier
  std::uint64_t registers_engine_read = 0;   // slots read through FAUST
  std::uint64_t snapshots_cached = 0;        // snapshots with zero engine reads
  std::uint64_t snapshots_total = 0;
  /// registers_cache_served / (served + engine reads); 0 when no reads.
  double cache_hit_rate = 0;

  // D9 real-socket wire totals, aggregated over the process shards'
  // transports (all zero outside kProcess). Payload bytes mirror the
  // net::Network counters (comparable across transports); socket bytes
  // include framing, whose share is reported separately.
  std::uint64_t puts = 0;  // put ops issued (bytes-per-put denominator)
  std::uint64_t wire_payload_bytes = 0;
  std::uint64_t wire_socket_bytes = 0;  // written + read, framing included
  std::uint64_t wire_framing_bytes = 0;
  std::uint64_t wire_reconnects = 0;
  /// SUBMIT + SUBMIT_DELTA payload share — the D6 flat-in-K gate reads
  /// submit_payload_bytes / puts over a real TCP deployment.
  std::uint64_t submit_payload_bytes = 0;

  // D10 chaos accounting, aggregated over every shard. The net::
  // ChaosStats quartet comes from simulated fabrics; blackholed/delayed/
  // resets from process shards' transports; retransmits and duplicate
  // suppression measure how much resilience machinery the storm actually
  // exercised (duplicate_replies above counts the server side).
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_reordered = 0;
  std::uint64_t chaos_partition_dropped = 0;
  std::uint64_t chaos_blackholed = 0;  // process shards: suppressed frames
  std::uint64_t chaos_delayed = 0;     // process shards: latency-shimmed frames
  std::uint64_t chaos_resets = 0;      // process shards: injected resets
  std::uint64_t retransmits = 0;       // client SUBMIT/COMMIT re-sends
};

/// Canonical digest of a merged view (ChunkedHasher over the sorted
/// key/value/writer/seq stream) — what merged_digest holds.
crypto::Hash merged_view_digest(const std::map<std::string, kv::KvEntry>& view);

/// Runs one scenario to completion. Ops are issued synchronously (each
/// driven to completion before the next); a kill event fires after its
/// op is ISSUED but before it is driven, so in-flight operations ride
/// through the crash and resume against the recovered server.
ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace faust::scenario
