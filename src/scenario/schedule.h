// Declarative kill/restart schedules for scenario runs (runner.h): each
// event transiently crashes one shard's durable server right after a
// given op is issued and brings it back from disk after a fixed downtime
// of executor time. Restart runs on the shard's own executor (its thread
// in threaded mode), so recovery serializes with that shard's deliveries.
//
// Under ExecMode::kProcess the same event SIGKILLs the shard's worker
// PROCESS (no cleanup runs over there) and the restart respawns it with
// a bumped incarnation, recovering from its on-disk WAL/snapshot; the
// downtime is `downtime` ticks × ProcessOptions::tick of real time,
// served by a dedicated restarter thread (runner.cc explains why not an
// executor timer).
#pragma once

#include <cstddef>
#include <cstdint>

namespace faust::scenario {

/// One scheduled transient crash.
struct KillEvent {
  /// Kill fires right after op index `at_op` (0-based) is issued — the op
  /// may be in flight against the killed shard and must resume.
  std::uint64_t at_op = 0;
  std::size_t shard = 0;
  /// Executor-time units (virtual ticks in deterministic mode) until the
  /// shard's server is rebuilt from disk.
  std::uint64_t downtime = 5'000;
};

}  // namespace faust::scenario
