// Declarative kill/restart, partition and chaos schedules for scenario
// runs (runner.h): each event fires right after a given op is issued.
//
// KillEvent transiently crashes one shard's durable server and brings it
// back from disk after a fixed downtime of executor time. Restart runs
// on the shard's own executor (its thread in threaded mode), so recovery
// serializes with that shard's deliveries.
//
// Under ExecMode::kProcess the same event SIGKILLs the shard's worker
// PROCESS (no cleanup runs over there) and the restart respawns it with
// a bumped incarnation, recovering from its on-disk WAL/snapshot; the
// downtime is `downtime` ticks × ProcessOptions::tick of real time,
// served by a dedicated restarter thread (runner.cc explains why not an
// executor timer).
//
// PartitionEvent and ChaosEvent are the D10 network-chaos schedule: a
// timed (optionally asymmetric) cut of one shard's client↔server
// channels, and mid-run replacement of a shard's FaultPlan. Both are
// timing faults by construction — the differential oracle pins that a
// run under any such schedule converges to the SAME merged view as a
// fault-free replay, with zero fail_i fired (Def. 5 accuracy: a slow or
// silent channel is never evidence of server misbehavior).
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/network.h"

namespace faust::scenario {

/// One scheduled transient crash.
struct KillEvent {
  /// Kill fires right after op index `at_op` (0-based) is issued — the op
  /// may be in flight against the killed shard and must resume.
  std::uint64_t at_op = 0;
  std::size_t shard = 0;
  /// Executor-time units (virtual ticks in deterministic mode) until the
  /// shard's server is rebuilt from disk.
  std::uint64_t downtime = 5'000;
};

/// One timed partition of a shard's client↔server channels (D10).
///
/// Simulated shards cut the directed channels on the shard's own
/// net::Network (every client → server, plus the reverse when
/// `symmetric`); in-flight messages on a cut channel are dropped at
/// delivery time, so the partition bites even for bytes already "on the
/// wire". Process shards blackhole the worker's NodeId on the shard's
/// sock::SocketTransport instead (both directions — a TCP byte stream
/// has no useful one-way cut: suppressing only requests still leaks
/// liveness through ACKs), for `duration` ticks × ProcessOptions::tick
/// of real time, served by a dedicated healer thread.
struct PartitionEvent {
  /// Fires right after op index `at_op` (0-based) is issued.
  std::uint64_t at_op = 0;
  std::size_t shard = 0;
  /// Executor-time units (virtual ticks in deterministic mode) until the
  /// cut heals.
  std::uint64_t duration = 2'000;
  /// false: only client→server is cut (the asymmetric outage of the
  /// acceptance scenario — requests vanish, the server's unsolicited
  /// traffic still arrives). true: both directions.
  bool symmetric = false;
};

/// Mid-run replacement of one shard's chaos plan (D10). An all-zero
/// (inactive) plan turns chaos OFF for that shard — storms have edges.
///
/// Process shards have no per-message probabilistic fabric (TCP already
/// reassembles and retransmits below us), so the plan maps onto the
/// transport's chaos shim: extra_delay+jitter ticks become fixed receive
/// latency (× ProcessOptions::tick), and drop > 0 injects one immediate
/// mid-frame connection reset — the socket-realistic analog of message
/// loss, forcing redial + resubmit instead of silent per-packet drops.
struct ChaosEvent {
  /// Fires right after op index `at_op` (0-based) is issued.
  std::uint64_t at_op = 0;
  std::size_t shard = 0;
  net::FaultPlan plan;
};

}  // namespace faust::scenario
