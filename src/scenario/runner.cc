#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "crypto/chunked_hasher.h"
#include "exec/executor.h"
#include "shard/sharded_kv_client.h"
#include "ustor/messages.h"
#include "wire/encoder.h"

namespace faust::scenario {
namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

crypto::Hash merged_view_digest(const std::map<std::string, kv::KvEntry>& view) {
  wire::Writer w;
  for (const auto& [key, e] : view) {
    w.put_bytes(BytesView(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
    w.put_bytes(
        BytesView(reinterpret_cast<const std::uint8_t*>(e.value.data()), e.value.size()));
    w.put_u32(static_cast<std::uint32_t>(e.writer));
    w.put_u64(e.seq);
  }
  const Bytes encoded = w.take();
  return crypto::ChunkedHasher::digest(encoded);
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  FAUST_CHECK(config.kills.empty() || !config.dir.empty());
  const bool det = config.mode == shard::ExecMode::kDeterministic;

  // A schedule that LOSES messages — probabilistic drops, or partitions
  // (anything in flight into the cut is gone, and over a socket a
  // blackholed or reset frame is gone too) — needs the client
  // retransmission timer: the fabric's reliability guarantee is off, and
  // without re-sends the op stream just hangs out its budget. Catch the
  // misconfiguration here instead of as a silent timeout.
  bool lossy = config.fault_plan.drop > 0 || !config.partitions.empty();
  for (const ChaosEvent& ev : config.chaos) lossy = lossy || ev.plan.drop > 0;
  FAUST_CHECK(!lossy || config.retransmit_base > 0);

  shard::ShardedClusterConfig sc_cfg;
  sc_cfg.shards = config.shards;
  sc_cfg.seed = config.cluster_seed;
  sc_cfg.mode = config.mode;
  sc_cfg.durability_root = config.dir;
  sc_cfg.shard_template.n = config.workload.n_writers;
  sc_cfg.shard_template.durability.snapshot_every = config.snapshot_every;
  // Dummy reads OFF: they consume client timestamps on a timer, which
  // would make the op stream's engine footprint depend on virtual-time
  // trajectory — the crash and crash-free runs must issue IDENTICAL
  // engine ops. Probes stay on (they carry no timestamps) so stability
  // cuts still advance.
  sc_cfg.shard_template.faust.dummy_read_period = 0;
  sc_cfg.shard_template.faust.retransmit_base = config.retransmit_base;
  sc_cfg.shard_template.faust.retransmit_cap = config.retransmit_cap;
  sc_cfg.shard_template.cache = config.cache;
  sc_cfg.process = config.process;
  shard::ShardedCluster sc(sc_cfg);

  // D10 chaos plumbing. Simulated shards take the FaultPlan directly on
  // their fabric (calls serialized onto the shard's executor); process
  // shards go through the transport's chaos shim (any-thread safe), with
  // a per-shard shadow of the installed ChaosOptions so partitions and
  // plan changes compose — the healer thread must restore latency shims,
  // not wipe them.
  std::mutex chaos_mu;
  std::vector<sock::ChaosOptions> chaos_shadow(config.shards);
  const auto tick_ms = [&config](std::uint64_t ticks) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::nanoseconds(static_cast<std::int64_t>(ticks) *
                                 config.process.tick.count()));
  };
  const auto on_shard = [&sc, det](std::size_t s, std::function<void()> body) {
    if (det) {
      body();
    } else {
      FAUST_CHECK(exec::post_sync(sc.shard_exec(s), body));
    }
  };
  const auto apply_plan = [&](std::size_t s, const net::FaultPlan& plan) {
    if (sock::SocketTransport* t = sc.shard_transport(s)) {
      // schedule.h documents the mapping: latency shapes the receive
      // path; probabilistic drop becomes one mid-frame reset (TCP owns
      // per-packet loss; what the protocol sees is a dead connection).
      {
        std::lock_guard lock(chaos_mu);
        chaos_shadow[s].rx_latency = tick_ms(plan.extra_delay + plan.jitter);
        t->set_chaos(chaos_shadow[s]);
      }
      if (plan.drop > 0) t->inject_reset();
      return;
    }
    on_shard(s, [&sc, s, plan] { sc.shard(s).net().set_fault_plan(plan); });
  };

  // Process-shard restarts run on these (see ScenarioConfig::process);
  // declared after `sc` so the join-on-unwind happens while it is alive.
  std::vector<std::thread> restarters;
  struct JoinRestarters {
    std::vector<std::thread>& threads;
    ~JoinRestarters() {
      for (auto& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } join_restarters{restarters};

  std::vector<std::unique_ptr<shard::ShardedKvClient>> kv;
  for (ClientId i = 1; i <= config.workload.n_writers; ++i) {
    kv.push_back(std::make_unique<shard::ShardedKvClient>(sc, i));
  }

  // The baseline storm starts BEFORE the first op: every shard's fabric
  // carries the plan for the whole run (mid-run changes go through
  // ChaosEvents).
  if (config.fault_plan.active()) {
    for (std::size_t s = 0; s < config.shards; ++s) apply_plan(s, config.fault_plan);
  }

  ScenarioResult result;
  WorkloadGenerator gen(config.workload);

  // Restart bookkeeping, written from restart callbacks (which run on a
  // shard's thread in threaded mode).
  std::atomic<int> restarts_done{0};
  std::atomic<int> restarts_snapshot{0};
  std::atomic<std::uint64_t> recovery_ns{0};

  // Partition-heal bookkeeping: process-shard partitions heal on
  // dedicated threads (like restarts); the merged fan-out below must not
  // run into a still-blackholed shard.
  std::atomic<int> heals_done{0};
  int heals_expected = 0;

  std::vector<double> latencies;
  latencies.reserve(config.workload.n_ops);
  const auto op_timeout = std::chrono::milliseconds(config.op_budget_ms);

  for (std::uint64_t i = 0; i < config.workload.n_ops; ++i) {
    const Op op = gen.next();
    const std::string key = key_name(op.key);
    shard::ShardedKvClient& client = *kv[static_cast<std::size_t>(op.writer - 1)];

    std::atomic<bool> done{false};
    const auto begin = std::chrono::steady_clock::now();
    switch (op.kind) {
      case Op::Kind::kPut:
        ++result.puts;
        client.put(key, op.value, [&done](Timestamp) {
          done.store(true, std::memory_order_release);
        });
        break;
      case Op::Kind::kGet:
        ++result.reads;
        client.get(key, [&done](const shard::ShardedGetResult&) {
          done.store(true, std::memory_order_release);
        });
        break;
      case Op::Kind::kErase:
        client.erase(key, [&done](Timestamp) {
          done.store(true, std::memory_order_release);
        });
        break;
    }

    // Kill events fire with the op already in flight: if it was routed to
    // the killed shard, its SUBMIT (or the REPLY) is dropped by the epoch
    // fence, and completion requires the full recover-reconnect-resume
    // path — exactly what the scenario is here to exercise.
    for (const KillEvent& kill : config.kills) {
      if (kill.at_op != i) continue;
      FAUST_CHECK(kill.shard < config.shards);
      sc.kill_shard(kill.shard);
      if (sc.process_shard(kill.shard)) {
        // A process restart blocks on the respawned worker's READY line
        // and then post_syncs the client reconnect onto the shard's
        // runtime — so it cannot run as an after() timer ON that runtime
        // (it would deadlock against itself). A dedicated thread serves
        // the downtime in real time instead: `downtime` is in executor
        // ticks, and the runtime paces one tick per process.tick.
        const auto downtime = std::chrono::nanoseconds(
            static_cast<std::int64_t>(kill.downtime) * config.process.tick.count());
        restarters.emplace_back([&sc, downtime, shard_idx = kill.shard, &restarts_done,
                                 &recovery_ns] {
          std::this_thread::sleep_for(downtime);
          const auto t0 = std::chrono::steady_clock::now();
          sc.restart_shard(shard_idx);
          const auto t1 = std::chrono::steady_clock::now();
          recovery_ns.fetch_add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
          restarts_done.fetch_add(1);
        });
        continue;
      }
      Cluster& cluster = sc.shard(kill.shard);
      sc.shard_exec(kill.shard).after(
          kill.downtime,
          [&cluster, &restarts_done, &restarts_snapshot, &recovery_ns] {
            // Already on the shard's executor (its thread in threaded
            // mode): recover directly — post_sync from here would
            // deadlock against ourselves.
            const auto t0 = std::chrono::steady_clock::now();
            cluster.restart_server();
            const auto t1 = std::chrono::steady_clock::now();
            recovery_ns.fetch_add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
            if (cluster.pserver()->recovered_from_snapshot()) {
              restarts_snapshot.fetch_add(1);
            }
            restarts_done.fetch_add(1);
          });
    }

    // Partition and chaos events ride the same fire-after-issue rule as
    // kills: the in-flight op may be aimed straight into the cut and must
    // survive on retransmission once the channel heals.
    for (const PartitionEvent& part : config.partitions) {
      if (part.at_op != i) continue;
      FAUST_CHECK(part.shard < config.shards);
      if (sock::SocketTransport* t = sc.shard_transport(part.shard)) {
        {
          std::lock_guard lock(chaos_mu);
          chaos_shadow[part.shard].blackhole.insert(kServerNode);
          t->set_chaos(chaos_shadow[part.shard]);
        }
        ++heals_expected;
        restarters.emplace_back([&chaos_mu, &chaos_shadow, &heals_done, t,
                                 shard_idx = part.shard, hold = tick_ms(part.duration)] {
          std::this_thread::sleep_for(hold);
          {
            std::lock_guard lock(chaos_mu);
            chaos_shadow[shard_idx].blackhole.erase(kServerNode);
            t->set_chaos(chaos_shadow[shard_idx]);
          }
          heals_done.fetch_add(1);
        });
        continue;
      }
      Cluster& cluster = sc.shard(part.shard);
      const auto writers = static_cast<ClientId>(config.workload.n_writers);
      on_shard(part.shard, [&cluster, writers, symmetric = part.symmetric] {
        net::Network& net = cluster.net();
        for (ClientId c = 1; c <= writers; ++c) {
          net.partition(c, kServerNode);
          if (symmetric) net.partition(kServerNode, c);
        }
      });
      sc.shard_exec(part.shard)
          .after(part.duration, [&cluster, writers, symmetric = part.symmetric] {
            net::Network& net = cluster.net();
            for (ClientId c = 1; c <= writers; ++c) {
              net.heal(c, kServerNode);
              if (symmetric) net.heal(kServerNode, c);
            }
          });
    }
    for (const ChaosEvent& ev : config.chaos) {
      if (ev.at_op != i) continue;
      FAUST_CHECK(ev.shard < config.shards);
      apply_plan(ev.shard, ev.plan);
    }

    if (!sc.await(done, op_timeout)) {
      result.complete = false;
      result.ops = i;
      result.any_failed = true;  // a hung op is a failed scenario
      return result;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count()) /
        1000.0);
  }
  result.ops = config.workload.n_ops;

  // Wait out any restart or partition heal still pending (its event came
  // so late no subsequent op needed the shard); the merged fan-out below
  // needs every shard up and reachable.
  while (restarts_done.load(std::memory_order_acquire) <
             static_cast<int>(config.kills.size()) ||
         heals_done.load(std::memory_order_acquire) < heals_expected) {
    if (det) {
      sc.sched().step();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (det && config.drain_time > 0) {
    sc.run_for(config.drain_time);  // probes converge the stability cuts
  }

  std::atomic<bool> listed{false};
  shard::ShardedListResult merged;
  // Bypass the cache: the merged view is the authoritative engine state
  // the crash and cache differential oracles compare.
  kv[0]->list(
      [&](const shard::ShardedListResult& r) {
        merged = r;
        listed.store(true, std::memory_order_release);
      },
      /*bypass_cache=*/true);
  if (!sc.await(listed, op_timeout)) {
    result.complete = false;
    result.any_failed = true;
    return result;
  }
  result.merged = std::move(merged.entries);
  result.merged_complete = merged.complete;
  result.merged_digest = merged_view_digest(result.merged);

  if (det) {
    for (std::size_t s = 0; s < config.shards; ++s) {
      result.shard_stable.push_back(kv[0]->shard_stable_ts(s));
    }
  }

  result.complete = true;
  result.any_failed = sc.any_failed();
  result.restarts = restarts_done.load();
  result.restarts_from_snapshot = restarts_snapshot.load();
  result.recovery_ms_total = static_cast<double>(recovery_ns.load()) / 1e6;

  std::sort(latencies.begin(), latencies.end());
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(latencies, 0.99);
  result.max_us = latencies.empty() ? 0 : latencies.back();

  // Durability counters, read at quiescence (every op completed, every
  // restart done). Threaded mode: the clients above are about to go
  // quiet; shard threads only tick timers now. Process shards report
  // theirs over the STATS line of a graceful worker shutdown — which is
  // why this runs only after the merged fan-out is in hand.
  for (std::size_t s = 0; s < config.shards; ++s) {
    const storage::PersistentServer* ps = sc.shard(s).pserver();
    if (ps == nullptr) continue;
    const auto read = [&result, ps] {
      result.snapshots_written += ps->snapshots_written();
      result.snapshots_rejected += ps->snapshots_rejected();
      result.duplicate_replies += ps->duplicate_replies();
      result.wal_records += ps->wal_records();
    };
    if (det) {
      read();
    } else {
      // The shard's runtime thread still appends WAL records on timers
      // (quiescent means no ops in flight, not a stopped clock), so the
      // read must serialize onto that thread.
      FAUST_CHECK(exec::post_sync(sc.shard_exec(s), read));
    }
  }
  // Socket-level totals from the process shards' transports (counters are
  // any-thread safe; the transports live until `sc` dies).
  for (std::size_t s = 0; s < config.shards; ++s) {
    if (sock::SocketTransport* t = sc.shard_transport(s)) {
      result.wire_payload_bytes += t->total().bytes;
      result.submit_payload_bytes +=
          t->total_for(static_cast<std::uint8_t>(ustor::MsgType::kSubmit)).bytes +
          t->total_for(static_cast<std::uint8_t>(ustor::MsgType::kSubmitDelta)).bytes;
      const sock::WireStats w = t->wire();
      result.wire_socket_bytes += w.socket_bytes_out + w.socket_bytes_in;
      result.wire_framing_bytes += w.framing_bytes_out;
      result.wire_reconnects += w.reconnects;
      result.chaos_blackholed += w.chaos_blackholed;
      result.chaos_delayed += w.chaos_delayed;
      result.chaos_resets += w.chaos_resets;
    }
  }

  // D10 chaos + resilience counters (same quiescence rules as the
  // durability reads above). Retransmit counters live on the in-process
  // FaustClients in every mode; fabric chaos stats only exist where the
  // shard owns a simulated Network.
  for (std::size_t s = 0; s < config.shards; ++s) {
    Cluster& cluster = sc.shard(s);
    const auto read = [&result, &cluster,
                       writers = static_cast<ClientId>(config.workload.n_writers)] {
      if (!cluster.external_transport()) {
        const net::ChaosStats& cs = cluster.net().chaos();
        result.chaos_dropped += cs.dropped;
        result.chaos_duplicated += cs.duplicated;
        result.chaos_reordered += cs.reordered;
        result.chaos_partition_dropped += cs.partition_dropped;
      }
      for (ClientId c = 1; c <= writers; ++c) {
        result.retransmits += cluster.client(c).retransmits();
      }
    };
    if (det) {
      read();
    } else {
      FAUST_CHECK(exec::post_sync(sc.shard_exec(s), read));
    }
  }

  if (sc.procs() != nullptr) {
    for (const auto& stats : sc.finalize_processes()) {
      if (!stats) continue;
      result.snapshots_written += stats->snapshots_written;
      result.snapshots_rejected += stats->snapshots_rejected;
      result.duplicate_replies += stats->duplicate_replies;
      result.wal_records += stats->wal_records;
    }
    result.restarts_from_snapshot += sc.procs()->restarts_from_snapshot();
  }

  // Cache effectiveness, aggregated over every (client, shard) engine.
  for (const auto& client : kv) {
    for (std::size_t s = 0; s < config.shards; ++s) {
      const kv::KvClient& engine = client->shard_kv(s);
      result.registers_cache_served += engine.registers_cache_served();
      result.registers_engine_read += engine.registers_engine_read();
      result.snapshots_cached += engine.snapshots_cached();
      result.snapshots_total += engine.snapshots_total();
    }
  }
  const std::uint64_t resolved =
      result.registers_cache_served + result.registers_engine_read;
  if (resolved > 0) {
    result.cache_hit_rate =
        static_cast<double>(result.registers_cache_served) / static_cast<double>(resolved);
  }
  return result;
}

}  // namespace faust::scenario
