#include "scenario/workload.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "crypto/chunked_hasher.h"
#include "wire/encoder.h"

namespace faust::scenario {
namespace {

/// FNV-1a over the rank bytes: spreads the zipf head across the keyspace
/// (rank 0 — the most popular key — lands on an arbitrary but fixed id).
std::uint64_t fnv1a_scramble(std::uint64_t rank) {
  std::uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (rank >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

std::string key_name(std::uint64_t key) {
  // Fixed-width hex keeps lexicographic order aligned with numeric order
  // and key lengths uniform (value-size skew stays where it was put).
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%016llx", static_cast<unsigned long long>(key));
  return std::string(buf);
}

Bytes encode_op(const Op& op) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(op.kind));
  w.put_u32(static_cast<std::uint32_t>(op.writer));
  w.put_u64(op.key);
  w.put_bytes(BytesView(reinterpret_cast<const std::uint8_t*>(op.value.data()),
                        op.value.size()));
  return w.take();
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  FAUST_CHECK(config_.n_keys >= 1);
  FAUST_CHECK(config_.n_writers >= 1);
  FAUST_CHECK(config_.zipf_exponent > 0 && config_.zipf_exponent < 1);
  FAUST_CHECK(config_.value_min <= config_.value_max);
  const double theta = config_.zipf_exponent;
  const auto n = config_.n_keys;
  // O(K) once; every draw after this is O(1). K = 10^6 costs ~ms.
  zetan_ = zeta(n, theta);
  zeta2_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
  if (config_.working_set > 0) recent_.reserve(config_.working_set);
}

std::uint64_t WorkloadGenerator::zipf_draw() {
  // Gray et al.'s bounded-zipf inversion, as used by YCSB.
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  std::uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, config_.zipf_exponent)) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(static_cast<double>(config_.n_keys) *
                                      std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= config_.n_keys) rank = config_.n_keys - 1;
  }
  return fnv1a_scramble(rank) % config_.n_keys;
}

Op WorkloadGenerator::next() {
  Op op;
  // Pinned draw order — see header. Each branch consumes exactly the
  // draws its inputs need and nothing else observes the stream position.
  const double kind_draw = rng_.next_double();
  if (kind_draw < config_.read_fraction) {
    op.kind = Op::Kind::kGet;
  } else if (kind_draw < config_.read_fraction +
                             (1.0 - config_.read_fraction) * config_.erase_fraction) {
    op.kind = Op::Kind::kErase;
  } else {
    op.kind = Op::Kind::kPut;
  }
  op.writer = static_cast<ClientId>(
      1 + rng_.next_below(static_cast<std::uint64_t>(config_.n_writers)));

  const bool from_working_set = config_.working_set > 0 && !recent_.empty() &&
                                rng_.next_double() < config_.locality;
  if (from_working_set) {
    op.key = recent_[static_cast<std::size_t>(
        rng_.next_below(static_cast<std::uint64_t>(recent_.size())))];
  } else {
    op.key = zipf_draw();
  }
  if (config_.working_set > 0) {
    if (recent_.size() < config_.working_set) {
      recent_.push_back(op.key);
    } else {
      recent_[recent_next_] = op.key;
      recent_next_ = (recent_next_ + 1) % config_.working_set;
    }
  }

  if (op.kind == Op::Kind::kPut) {
    const std::size_t len =
        config_.value_min +
        static_cast<std::size_t>(rng_.next_below(
            static_cast<std::uint64_t>(config_.value_max - config_.value_min + 1)));
    op.value.resize(len);
    for (auto& ch : op.value) {
      ch = static_cast<char>('a' + rng_.next_below(26));
    }
  }
  ++generated_;
  return op;
}

crypto::Hash WorkloadGenerator::stream_digest(const WorkloadConfig& config) {
  WorkloadGenerator gen(config);
  Bytes all;
  for (std::uint64_t i = 0; i < config.n_ops; ++i) {
    const Bytes enc = encode_op(gen.next());
    all.insert(all.end(), enc.begin(), enc.end());
  }
  return crypto::ChunkedHasher::digest(all);
}

}  // namespace faust::scenario
