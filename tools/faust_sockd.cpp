// faust_sockd — the real-socket deployment binary (DESIGN.md D9).
//
// Two subcommands:
//
//   faust_sockd serve --n 3 --listen tcp://127.0.0.1:0 --dir DIR
//       [--snapshot-every N] [--tick NS] [--incarnation K]
//       [--cache --cache-arena BYTES --cache-ttl TICKS] [--max-frame B]
//
//     One shard's server side (durable PersistentServer + optional cache
//     node) behind a listening SocketTransport. Spawned and supervised by
//     sock::ProcessCluster; speaks the READY/STATS stdout protocol
//     (sock/process_cluster.h). SIGTERM = graceful shutdown with STATS,
//     SIGKILL = the crash injection.
//
//   faust_sockd load --shards 3 --dir DIR [--worker PATH] [--tcp]
//       [--ops N] [--keys K] [--writers W] [--seed S] [--cluster-seed S]
//       [--value-min B] [--value-max B] [--read-fraction F]
//       [--kill AT_OP:SHARD:DOWNTIME]... [--tick NS] [--timer-scale X]
//       [--op-budget-ms MS] [--snapshot-every N] [--cache]
//
//     The loopback load generator: runs the seeded scenario workload in
//     ExecMode::kProcess (spawning `--worker`, default this binary, as
//     the shard servers) and prints a RESULT line with the merged-view
//     digest for differential comparison (sock/load.h).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sock/load.h"
#include "sock/serve.h"

namespace {

[[noreturn]] void usage(const std::string& why) {
  std::fprintf(stderr, "faust_sockd: %s\n(see the header comment of tools/faust_sockd.cpp)\n",
               why.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') usage(std::string(flag) + ": not a number: " + s);
  return v;
}

double parse_double(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') usage(std::string(flag) + ": not a number: " + s);
  return v;
}

std::string self_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) usage("--worker not given and /proc/self/exe unreadable");
  buf[n] = '\0';
  return buf;
}

int run_serve(int argc, char** argv) {
  faust::sock::ServeOptions opts;
  opts.listen = faust::sock::Endpoint::tcp("127.0.0.1", 0);
  for (int i = 0; i < argc; ++i) {
    const char* flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(std::string(flag) + ": missing value");
      return argv[++i];
    };
    if (std::strcmp(flag, "--n") == 0) {
      opts.n = static_cast<int>(parse_u64(flag, value()));
    } else if (std::strcmp(flag, "--listen") == 0) {
      const char* uri = value();
      auto ep = faust::sock::Endpoint::parse(uri);
      if (!ep) usage(std::string("--listen: bad endpoint: ") + uri);
      opts.listen = *ep;
    } else if (std::strcmp(flag, "--dir") == 0) {
      opts.dir = value();
    } else if (std::strcmp(flag, "--snapshot-every") == 0) {
      opts.snapshot_every = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--tick") == 0) {
      opts.tick = std::chrono::nanoseconds(parse_u64(flag, value()));
    } else if (std::strcmp(flag, "--incarnation") == 0) {
      opts.incarnation = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--cache") == 0) {
      opts.cache = true;
      opts.cache_opts.enabled = true;
    } else if (std::strcmp(flag, "--cache-arena") == 0) {
      opts.cache_opts.arena_bytes = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--cache-ttl") == 0) {
      opts.cache_opts.ttl = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--max-frame") == 0) {
      opts.max_frame_bytes = parse_u64(flag, value());
    } else {
      usage(std::string("serve: unknown flag ") + flag);
    }
  }
  if (opts.dir.empty()) usage("serve: --dir is required");
  return faust::sock::run_server_process(opts);
}

int run_load(int argc, char** argv) {
  faust::scenario::ScenarioConfig cfg;
  cfg.mode = faust::shard::ExecMode::kProcess;
  cfg.process.use_tcp = false;
  for (int i = 0; i < argc; ++i) {
    const char* flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(std::string(flag) + ": missing value");
      return argv[++i];
    };
    if (std::strcmp(flag, "--shards") == 0) {
      cfg.shards = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--dir") == 0) {
      cfg.dir = value();
    } else if (std::strcmp(flag, "--worker") == 0) {
      cfg.process.worker_path = value();
    } else if (std::strcmp(flag, "--tcp") == 0) {
      cfg.process.use_tcp = true;
    } else if (std::strcmp(flag, "--ops") == 0) {
      cfg.workload.n_ops = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--keys") == 0) {
      cfg.workload.n_keys = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--writers") == 0) {
      cfg.workload.n_writers = static_cast<int>(parse_u64(flag, value()));
    } else if (std::strcmp(flag, "--seed") == 0) {
      cfg.workload.seed = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--cluster-seed") == 0) {
      cfg.cluster_seed = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--value-min") == 0) {
      cfg.workload.value_min = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--value-max") == 0) {
      cfg.workload.value_max = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--read-fraction") == 0) {
      cfg.workload.read_fraction = parse_double(flag, value());
    } else if (std::strcmp(flag, "--kill") == 0) {
      faust::scenario::KillEvent kill;
      unsigned long long at = 0, shard = 0, down = 0;
      if (std::sscanf(value(), "%llu:%llu:%llu", &at, &shard, &down) != 3) {
        usage("--kill: want AT_OP:SHARD:DOWNTIME");
      }
      kill.at_op = at;
      kill.shard = shard;
      kill.downtime = down;
      cfg.kills.push_back(kill);
    } else if (std::strcmp(flag, "--tick") == 0) {
      cfg.process.tick = std::chrono::nanoseconds(parse_u64(flag, value()));
    } else if (std::strcmp(flag, "--timer-scale") == 0) {
      cfg.process.timer_scale = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--op-budget-ms") == 0) {
      cfg.op_budget_ms = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--snapshot-every") == 0) {
      cfg.snapshot_every = parse_u64(flag, value());
    } else if (std::strcmp(flag, "--cache") == 0) {
      cfg.cache.enabled = true;
    } else {
      usage(std::string("load: unknown flag ") + flag);
    }
  }
  if (cfg.dir.empty()) usage("load: --dir is required");
  if (cfg.process.worker_path.empty()) cfg.process.worker_path = self_path();
  return faust::sock::run_load_process(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("want a subcommand: serve | load");
  if (std::strcmp(argv[1], "serve") == 0) return run_serve(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "load") == 0) return run_load(argc - 2, argv + 2);
  usage(std::string("unknown subcommand ") + argv[1]);
}
